package sim

import (
	"fmt"

	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

// flow is one context's position while traversing a region's items.
type flow struct {
	c     *Ctx
	item  int
	stage int
	opPtr int
}

// regionExec drives one XRegion's items for a unit. Loop regions get their
// own regionExec for the body, owned by a loopExec engine (one engine per
// loop — the loop datapath is shared hardware, whoever's iterations flow
// through it).
type regionExec struct {
	u      *Unit
	r      *hls.XRegion
	items  []any // *segExec | *loopExec
	onDone func(*Ctx)
}

func buildRegionExec(u *Unit, r *hls.XRegion, onDone func(*Ctx)) *regionExec {
	re := &regionExec{u: u, r: r, onDone: onDone}
	for i, it := range r.Items {
		switch it := it.(type) {
		case *hls.Segment:
			re.items = append(re.items, newSegExec(u, re, it, i))
		case *hls.XRegion:
			le := &loopExec{u: u, r: it, owner: re, itemIdx: i}
			le.multithread = u.xk.Mode == kir.NDRange
			le.body = buildRegionExec(u, it, le.iterDone)
			// the Next-slot forwarding table is identical for every
			// iteration; build it once and share it across contexts
			for k, cc := range it.Carried {
				if cc.NextSlot >= 0 {
					if le.fwdShared == nil {
						le.fwdShared = map[int][]int{}
					}
					le.fwdShared[cc.NextSlot] = append(le.fwdShared[cc.NextSlot], k)
				}
			}
			re.items = append(re.items, le)
		}
	}
	return re
}

// enter starts a flow at the region's first item.
func (re *regionExec) enter(f *flow) {
	f.item = -1
	re.moveTo(f, 0)
}

// moveTo advances a flow to item idx (or completes the region).
func (re *regionExec) moveTo(f *flow, idx int) {
	f.item = idx
	if idx >= len(re.items) {
		re.onDone(f.c)
		re.u.freeFlow(f)
		return
	}
	switch it := re.items[idx].(type) {
	case *segExec:
		it.enqueue(f)
	case *loopExec:
		it.addResident(f)
	}
}

// resume unparks a flow after the loop at item idx completes.
func (re *regionExec) resume(idx int, f *flow) { re.moveTo(f, idx+1) }

// canAccept reports whether a new flow may enter the region this cycle: the
// first pipeline stage must be free. A stalled pipeline keeps its stage-0
// slot occupied, backpressuring the issue logic exactly like the synthesized
// hardware's valid/stall handshake.
func (re *regionExec) canAccept() bool {
	if len(re.items) == 0 {
		return true
	}
	if se, ok := re.items[0].(*segExec); ok {
		for _, f := range se.flows {
			if f.stage == 0 {
				return false
			}
		}
	}
	return true
}

func (re *regionExec) tick(now int64) {
	for _, it := range re.items {
		switch it := it.(type) {
		case *segExec:
			it.tick(now)
		case *loopExec:
			it.tick(now)
		}
	}
}

// segExec runs one scheduled segment as a lockstep pipeline: contexts occupy
// stages; a blocked op (memory response pending, full/empty channel) stalls
// every stage, which is what the paper's stall monitors measure.
type segExec struct {
	u       *Unit
	owner   *regionExec
	seg     *hls.Segment
	itemIdx int

	byStage    [][]*hls.XOp
	flows      []*flow // oldest (highest stage) first
	stallUntil int64
	// shifts counts pipeline advances. Loop issue spacing is measured in
	// shifts, not cycles: a stall must not compress the stage distance
	// between in-flight iterations or the II guarantee breaks.
	shifts int64
}

func newSegExec(u *Unit, owner *regionExec, seg *hls.Segment, itemIdx int) *segExec {
	se := &segExec{u: u, owner: owner, seg: seg, itemIdx: itemIdx}
	se.byStage = make([][]*hls.XOp, seg.Depth)
	for _, op := range seg.Ops {
		se.byStage[op.Start] = append(se.byStage[op.Start], op)
	}
	return se
}

func (se *segExec) enqueue(f *flow) {
	f.stage, f.opPtr = 0, 0
	se.flows = append(se.flows, f)
}

func (se *segExec) tick(now int64) {
	if se.stallUntil > now {
		return
	}
	stalled := false
	for _, f := range se.flows {
		ops := se.byStage[f.stage]
		for f.opPtr < len(ops) {
			if !se.u.execOp(f.c, ops[f.opPtr], now, se) {
				se.u.noteBlockedOp(ops[f.opPtr], now)
				stalled = true
				break
			}
			f.opPtr++
			se.u.noteProgress()
		}
		if stalled {
			break
		}
	}
	if stalled || se.stallUntil > now {
		return
	}
	// advance the pipeline one stage; retire flows that cleared the segment
	se.shifts++
	advanced := len(se.flows) > 0
	keep := se.flows[:0]
	for _, f := range se.flows {
		f.stage++
		f.opPtr = 0
		if f.stage >= se.seg.Depth {
			se.owner.moveTo(f, f.item+1)
			continue
		}
		keep = append(keep, f)
	}
	se.flows = keep
	// an empty segment "advancing" is not forward progress — counting it
	// would mask a deadlocked design behind idle pipeline stages
	if advanced {
		se.u.noteProgress()
	}
}

// carrState tracks one carried variable's most recent value in a resident's
// iteration chain.
type carrState struct {
	iter    int64 // iteration that produced val (-1 = loop init)
	val     int64
	readyAt int64
	waiting []*Ctx // issued successors awaiting delivery (in-order mode)

	outVal   int64 // final-iteration value, becomes the loop output
	outReady int64
	outSet   bool
}

// resident is one parent context executing the loop (a work-item threading
// through it, or the single-task control flow).
type resident struct {
	id         int
	parentFlow *flow

	evaluated bool
	start     int64
	step      int64
	total     int64
	infinite  bool

	nextIter int64
	inflight int
	carr     []carrState
}

// loopExec is the shared loop datapath. In-order mode (single-task, autorun)
// issues iterations back to back at the scheduled II — loop-level
// parallelism. Multithread mode (NDRange) issues among resident work-items
// as their carried values resolve — thread-level parallelism. The two modes
// produce exactly the execution orders of the paper's Figure 2(a)/(b).
type loopExec struct {
	u           *Unit
	r           *hls.XRegion
	owner       *regionExec
	itemIdx     int
	body        *regionExec
	multithread bool

	residents      []*resident
	nextResID      int
	lastIssue      int64
	lastIssueShift int64
	anyIssue       bool

	// fwdShared maps a Next slot to the carried indexes it defines; computed
	// once at build time (identical for every iteration context).
	fwdShared map[int][]int
}

// bodyShifts reports the body pipeline's shift counter (0 when the body does
// not start with a segment — composite loops issue sequentially anyway).
func (le *loopExec) bodyShifts() int64 {
	if len(le.body.items) > 0 {
		if se, ok := le.body.items[0].(*segExec); ok {
			return se.shifts
		}
	}
	return 0
}

func (le *loopExec) addResident(f *flow) {
	le.residents = append(le.residents, &resident{
		id:         le.nextResID,
		parentFlow: f,
		carr:       make([]carrState, len(le.r.Carried)),
	})
	le.nextResID++
}

func (le *loopExec) findResident(id int) *resident {
	for _, r := range le.residents {
		if r.id == id {
			return r
		}
	}
	return nil
}

func (le *loopExec) removeResident(id int) {
	for i, r := range le.residents {
		if r.id == id {
			le.residents = append(le.residents[:i], le.residents[i+1:]...)
			return
		}
	}
}

// evaluate computes loop bounds once the parent's values are ready.
func (le *loopExec) evaluate(r *resident, now int64) bool {
	pc := r.parentFlow.c
	for _, s := range []int{le.r.StartSlot, le.r.EndSlot, le.r.StepSlot} {
		if pc.readyAt(s) > now {
			return false
		}
	}
	for _, c := range le.r.Carried {
		if pc.readyAt(c.InitSlot) == Future {
			return false
		}
	}
	start, end, step := pc.val(le.r.StartSlot), pc.val(le.r.EndSlot), pc.val(le.r.StepSlot)
	r.start, r.step = start, step
	r.infinite = le.r.Infinite
	if step <= 0 {
		step = 1
		r.step = 1
	}
	if end > start {
		r.total = (end - start + step - 1) / step
	}
	for k, c := range le.r.Carried {
		r.carr[k] = carrState{iter: -1, val: pc.val(c.InitSlot), readyAt: pc.readyAt(c.InitSlot)}
	}
	r.evaluated = true
	return true
}

// finish writes loop outputs into the parent and resumes it.
func (le *loopExec) finish(r *resident) {
	pc := r.parentFlow.c
	for k, c := range le.r.Carried {
		st := &r.carr[k]
		if r.total == 0 {
			pc.write(c.OutSlot, st.val, st.readyAt)
		} else if st.outSet {
			pc.write(c.OutSlot, st.outVal, st.outReady)
		} else {
			// final Next never materialized (should not happen); fall back
			// to the latest value to keep the machine running
			pc.write(c.OutSlot, st.val, st.readyAt)
		}
	}
	f := r.parentFlow
	le.removeResident(r.id)
	le.owner.resume(le.itemIdx, f)
	le.u.noteProgress()
}

// maxInflight bounds iteration contexts per loop engine; real pipelines are
// bounded by their depth, and the canAccept gate keeps us near that, so this
// is purely a runaway backstop.
const maxInflight = 8192

// eligible reports whether resident r can issue its next iteration now.
func (le *loopExec) eligible(r *resident, now int64) bool {
	if !r.evaluated || (!r.infinite && r.nextIter >= r.total) {
		return false
	}
	if r.inflight >= maxInflight || !le.body.canAccept() {
		return false
	}
	if le.multithread {
		// respect the loop's II in pipeline shifts (conservative: covers
		// per-resident cross-iteration memory ordering)
		if le.anyIssue && le.r.II > 1 && le.bodyShifts()-le.lastIssueShift < int64(le.r.II) {
			return false
		}
		// carried inputs must be resolved before issuing
		for k := range le.r.Carried {
			st := &r.carr[k]
			if st.iter != r.nextIter-1 || st.readyAt > now {
				return false
			}
		}
		return true
	}
	// in-order mode: composite loops run iterations strictly sequentially;
	// leaf loops pipeline at II, measured in pipeline shifts so stalls keep
	// in-flight iterations II stages apart
	if le.r.II == 0 {
		return r.inflight == 0
	}
	return !le.anyIssue || le.bodyShifts()-le.lastIssueShift >= int64(le.r.II)
}

func (le *loopExec) issue(r *resident, now int64) {
	pc := r.parentFlow.c
	c := le.u.childCtx(pc)
	c.owner = le
	c.iter = r.nextIter
	c.resID = r.id

	c.grow(le.u.xk.NumSlots)
	// induction variable
	if le.r.IndSlot >= 0 {
		c.slots[le.r.IndSlot] = r.start + r.nextIter*r.step
		c.ready[le.r.IndSlot] = now
	}
	// carried phis
	for k, cc := range le.r.Carried {
		st := &r.carr[k]
		if st.iter == r.nextIter-1 {
			c.slots[cc.PhiSlot] = st.val
			c.ready[cc.PhiSlot] = st.readyAt
		} else {
			c.ready[cc.PhiSlot] = Future
			st.waiting = append(st.waiting, c)
		}
	}
	// forwarding hooks for Next slots (shared table, read-only)
	c.fwd = le.fwdShared
	// values already present at issue (Next == phi/init/iv/parent value)
	for k, cc := range le.r.Carried {
		if cc.NextSlot >= 0 && c.readyAt(cc.NextSlot) != Future {
			le.forward(c, k, c.val(cc.NextSlot), c.readyAt(cc.NextSlot))
		}
	}

	r.nextIter++
	r.inflight++
	le.lastIssue = now
	le.lastIssueShift = le.bodyShifts()
	le.anyIssue = true
	le.body.enter(le.u.newFlow(c))
	le.u.noteProgress()
}

// forward delivers a produced Next value to the resident's chain, to any
// waiting successor iteration, and captures the loop output on the final
// iteration.
func (le *loopExec) forward(c *Ctx, k int, v, at int64) {
	r := le.findResident(c.resID)
	if r == nil {
		return
	}
	st := &r.carr[k]
	if c.iter < st.iter {
		return // stale (should not happen; chains advance monotonically)
	}
	st.iter, st.val, st.readyAt = c.iter, v, at
	keep := st.waiting[:0]
	for _, w := range st.waiting {
		if w.iter == c.iter+1 {
			w.write(le.r.Carried[k].PhiSlot, v, at)
			continue
		}
		keep = append(keep, w)
	}
	st.waiting = keep
	if !r.infinite && c.iter == r.total-1 {
		st.outVal, st.outReady, st.outSet = v, at, true
	}
}

// iterDone retires a completed iteration context.
func (le *loopExec) iterDone(c *Ctx) {
	r := le.findResident(c.resID)
	if r == nil {
		le.u.freeCtx(c)
		return
	}
	r.inflight--
	// a context whose phi slot the body never reads can retire while still
	// queued for carried-value delivery; purge before recycling it
	for k := range r.carr {
		st := &r.carr[k]
		for i := 0; i < len(st.waiting); i++ {
			if st.waiting[i] == c {
				st.waiting = append(st.waiting[:i], st.waiting[i+1:]...)
				i--
			}
		}
	}
	le.u.freeCtx(c)
	if !r.infinite && r.nextIter >= r.total && r.inflight == 0 {
		le.finish(r)
	}
}

func (le *loopExec) tick(now int64) {
	// evaluate new residents and complete trivially-empty loops (indexed
	// loop, not a copied slice: finish() may remove the current resident)
	for i := 0; i < len(le.residents); i++ {
		r := le.residents[i]
		if r.evaluated {
			continue
		}
		if !le.evaluate(r, now) {
			continue
		}
		// an evaluation is a state change the fast-forward scan must not
		// jump over, even though no op executed
		le.u.m.workDone = true
		if !r.infinite && r.total == 0 {
			le.finish(r)
			i--
		}
	}
	// issue at most one iteration per cycle
	var pick *resident
	for _, r := range le.residents {
		if !le.eligible(r, now) {
			continue
		}
		if !le.multithread {
			pick = r
			break // in-order: first (oldest) resident only
		}
		if pick == nil || r.nextIter < pick.nextIter ||
			(r.nextIter == pick.nextIter && r.id < pick.id) {
			pick = r
		}
	}
	if pick != nil {
		le.issue(pick, now)
	}
	le.body.tick(now)
}

func (le *loopExec) String() string {
	return fmt.Sprintf("loop %q (mt=%v, residents=%d)", le.r.Label, le.multithread, len(le.residents))
}
