package sim

import (
	"fmt"

	"oclfpga/internal/fault"
	"oclfpga/internal/obs"
)

// faultRuntime is the machine-side state of an installed fault plan: events
// resolved against the design, plus reference counts so overlapping events
// on the same target compose instead of cancelling each other.
type faultRuntime struct {
	plan   *fault.Plan
	events []resolvedEvent

	readFrozen  map[int]int // chID -> active freeze-read event count
	writeFrozen map[int]int
	dropNB      map[int]int
	stuckCnt    map[string]int // kernel name -> active stuck event count

	frozenReadSince  map[int]int64
	frozenWriteSince map[int]int64
	stuckSince       map[string]int64

	memDelay int64 // currently applied extra latency
}

type resolvedEvent struct {
	ev      fault.Event
	chID    int // resolved channel id, -1 for kernel-targeted events
	applied bool
	active  bool
}

// installFaults resolves every event target against the design. Unknown
// targets are errors: a fault plan aimed at nothing would silently test
// nothing.
func (m *Machine) installFaults(p *fault.Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	fr := &faultRuntime{
		plan:             p,
		readFrozen:       map[int]int{},
		writeFrozen:      map[int]int{},
		dropNB:           map[int]int{},
		stuckCnt:         map[string]int{},
		frozenReadSince:  map[int]int64{},
		frozenWriteSince: map[int]int64{},
		stuckSince:       map[string]int64{},
	}
	for _, ev := range p.Events {
		re := resolvedEvent{ev: ev, chID: -1}
		switch {
		case ev.Kind.ChannelFault():
			c := m.d.Program.ChanByName(ev.Target)
			if c == nil {
				return fmt.Errorf("sim: fault plan targets unknown channel %q", ev.Target)
			}
			re.chID = c.ID
		case ev.Kind == fault.StuckUnit || ev.Kind == fault.LaunchSkew:
			if len(m.d.KernelUnits(ev.Target)) == 0 {
				return fmt.Errorf("sim: fault plan targets unknown kernel %q", ev.Target)
			}
		}
		if ev.Kind == fault.LaunchSkew {
			// launch skew is inherently a launch-time property: delay the
			// autorun units now, reproducing the §3.1 counter-skew spike
			for _, u := range m.units {
				if u.xk.Name == ev.Target {
					u.startAt += ev.Value
				}
			}
			re.applied = true
			if m.obs != nil {
				m.obs.rec.Instant(obs.KindFault, "fault:"+ev.Target, ev.Kind.String(),
					m.cycle, fmt.Sprintf("value=%d", ev.Value))
			}
		}
		fr.events = append(fr.events, re)
	}
	m.faults = fr
	return nil
}

// applyFaults transitions fault effects on and off for the current cycle.
// Called at the top of every tick, before channels snapshot their state, so
// a freeze triggered at cycle N is visible to cycle N's reads.
func (m *Machine) applyFaults() {
	fr := m.faults
	if fr == nil {
		return
	}
	now := m.cycle
	var memDelay int64
	for i := range fr.events {
		re := &fr.events[i]
		ev := re.ev
		switch ev.Kind {
		case fault.DepthOverride:
			if !re.applied && now >= ev.At {
				m.chans[re.chID].OverrideDepth(int(ev.Value))
				re.applied = true
				if m.obs != nil {
					m.obs.rec.Instant(obs.KindFault, "fault:"+ev.Target, ev.Kind.String(),
						now, fmt.Sprintf("value=%d", ev.Value))
				}
			}
		case fault.LaunchSkew:
			// applied at install time
		case fault.MemDelay:
			act := ev.ActiveAt(now)
			if act && ev.Value > memDelay {
				memDelay = ev.Value
			}
			// re.active is otherwise unused for aggregate mem-delay events;
			// repurpose it to edge-detect the window for the timeline
			if m.obs != nil && act != re.active {
				re.active = act
				m.obsFaultEdge(i, re, now)
			}
		default:
			active := ev.ActiveAt(now)
			if active == re.active {
				continue
			}
			re.active = active
			if m.obs != nil {
				m.obsFaultEdge(i, re, now)
			}
			delta := -1
			if active {
				delta = 1
			}
			switch ev.Kind {
			case fault.FreezeRead:
				fr.readFrozen[re.chID] += delta
				frozen := fr.readFrozen[re.chID] > 0
				m.chans[re.chID].SetReadFrozen(frozen)
				if frozen && delta > 0 && fr.readFrozen[re.chID] == 1 {
					fr.frozenReadSince[re.chID] = now
				}
			case fault.FreezeWrite:
				fr.writeFrozen[re.chID] += delta
				frozen := fr.writeFrozen[re.chID] > 0
				m.chans[re.chID].SetWriteFrozen(frozen)
				if frozen && delta > 0 && fr.writeFrozen[re.chID] == 1 {
					fr.frozenWriteSince[re.chID] = now
				}
			case fault.DropWriteNB:
				fr.dropNB[re.chID] += delta
				m.chans[re.chID].SetDropNB(fr.dropNB[re.chID] > 0)
			case fault.StuckUnit:
				fr.stuckCnt[ev.Target] += delta
				if delta > 0 && fr.stuckCnt[ev.Target] == 1 {
					fr.stuckSince[ev.Target] = now
				}
			}
		}
	}
	if memDelay != fr.memDelay {
		m.Mem.SetExtraLatency(memDelay)
		fr.memDelay = memDelay
	}
}

// stuck reports whether the unit's kernel is held by an active StuckUnit
// fault this cycle.
func (m *Machine) stuck(u *Unit) bool {
	return m.faults != nil && m.faults.stuckCnt[u.xk.Name] > 0
}

// stuckSinceCycle returns when the kernel's stuck fault engaged.
func (m *Machine) stuckSinceCycle(kernel string) int64 {
	if m.faults == nil {
		return 0
	}
	return m.faults.stuckSince[kernel]
}

// frozenBy reports whether the channel endpoint the unit is blocked on is
// frozen by fault injection, and since when.
func (m *Machine) frozenBy(chID int, dir string) (since int64, frozen bool) {
	if m.faults == nil || chID < 0 {
		return 0, false
	}
	switch dir {
	case "read":
		if m.faults.readFrozen[chID] > 0 {
			return m.faults.frozenReadSince[chID], true
		}
	case "write":
		if m.faults.writeFrozen[chID] > 0 {
			return m.faults.frozenWriteSince[chID], true
		}
	}
	return 0, false
}

// channelFrozen reports whether either endpoint of the channel is currently
// frozen ("read", "write", or "" when thawed).
func (m *Machine) channelFrozen(chID int) string {
	if m.faults == nil {
		return ""
	}
	if m.faults.readFrozen[chID] > 0 {
		return "read"
	}
	if m.faults.writeFrozen[chID] > 0 {
		return "write"
	}
	return ""
}
