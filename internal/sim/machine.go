// Package sim executes compiled designs cycle by cycle: kernel pipelines
// with lockstep stalls, Altera-channel connectivity, autorun persistent
// kernels, and the banked global-memory system. It is the stand-in for the
// paper's synthesized FPGA hardware.
package sim

import (
	"fmt"
	"sort"

	"oclfpga/internal/channel"
	"oclfpga/internal/fault"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
)

// Options configure a machine.
type Options struct {
	// MaxCycles bounds a Run (default 20,000,000).
	MaxCycles int64
	// StallLimit is how many cycles with zero forward progress on launched
	// kernels are tolerated before Run reports a deadlock (default 100,000).
	StallLimit int64
	// MemConfig tunes the DRAM model.
	MemConfig mem.Config
	// AutorunSkew returns the launch-cycle offset of an autorun kernel
	// compute unit. The paper notes separate persistent kernels may not
	// launch in the same cycle, skewing free-running counters (§3.1); a
	// non-zero skew reproduces that hazard.
	AutorunSkew func(kernel string, cu int) int64
	// Fault is an optional deterministic fault-injection plan the machine
	// consults every cycle. Unknown targets surface as an error from the
	// first Run rather than being silently ignored.
	Fault *fault.Plan
	// DisableFastForward forces Run to step every cycle even when the whole
	// fabric is provably quiescent. Fast-forward is exactly
	// semantics-preserving (see DESIGN.md §8), so this exists for debugging
	// and for the equivalence test suite, not for correctness.
	DisableFastForward bool
	// Observe attaches the observability recorder (DESIGN.md §9): a
	// structured event timeline plus, when Observe.SampleEvery > 0, a
	// periodic metrics series. Unlike a VCD cycle hook the recorder is
	// event-driven, so fast-forward stays enabled and the record is
	// byte-identical with skipping on or off. Nil disables observability;
	// the hot path then pays a single nil check.
	Observe *obs.Config
	// CaptureAt lists cycles at which OnCapture fires with the machine
	// paused exactly there (DESIGN.md §14). Capture cycles are fast-forward
	// deadlines — a jump never crosses one — so the callback sees precisely
	// the state the per-cycle path would. The callback must only read
	// (StateDump, StateHash, statistics); mutating the machine would fork
	// the deterministic re-execution captures exist to verify. Cycles at or
	// before the machine's current cycle are dropped.
	CaptureAt []int64
	// OnCapture receives each CaptureAt cycle as the machine reaches it
	// during Run/RunFor/Step. Ignored when CaptureAt is empty.
	OnCapture func(m *Machine, cycle int64)
}

func (o *Options) fill() {
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	if o.StallLimit == 0 {
		o.StallLimit = 100_000
	}
}

// Machine is one simulated board with a loaded design. Autorun kernels (the
// paper's persistent counters and ibuffers) run continuously; host launches
// enqueue single-task and NDRange kernels against the same live fabric.
type Machine struct {
	d    *hls.Design
	opts Options

	chans  []*channel.Channel
	Mem    *mem.System
	bufs   map[string]*mem.Buffer
	units  []*Unit // autorun units, persistent
	active []*Unit // launched units still running
	// launched keeps every launch in launch order, finished or not — the
	// state-dump walk needs units m.active has already dropped. (obsState
	// keeps its own copy because observability can outlive this machine's
	// run; this one exists even with observability off.)
	launched []*Unit

	cycle        int64
	lastProgress int64
	err          error

	// workDone is reset at the top of every tick and set whenever the tick
	// changes machine state in a way that is not batch-replayable; a tick
	// that ends with workDone false is quiescent and Run may fast-forward.
	workDone bool
	// dirtyChans lists channels touched since their last EndCycle.
	dirtyChans []*channel.Channel
	// fast-forward statistics (see FastForwardStats).
	ffJumps   int64
	ffSkipped int64

	faults *faultRuntime

	// captures is Options.CaptureAt sorted, deduplicated, and filtered to
	// the future; capIdx points at the next pending capture cycle.
	captures []int64
	capIdx   int
	// dHash memoizes DesignHash (0 = not yet computed).
	dHash uint64

	// obs is the observability recorder state (nil when Options.Observe is
	// unset — every hook site checks this once).
	obs *obsState

	// cycleHooks run at the end of every cycle (after channel commit);
	// the VCD recorder uses this.
	cycleHooks []func(cycle int64)
}

// New loads a design onto a fresh machine and starts its autorun kernels.
func New(d *hls.Design, opts Options) *Machine {
	opts.fill()
	m := &Machine{d: d, opts: opts, Mem: mem.NewSystem(opts.MemConfig), bufs: map[string]*mem.Buffer{}}
	for i, c := range d.Program.Chans {
		ch := channel.New(c.Name, d.ChanDepth[i])
		ch.SetNotify(func() { m.dirtyChans = append(m.dirtyChans, ch) })
		m.chans = append(m.chans, ch)
	}
	if opts.Observe != nil {
		m.initObserve(opts.Observe)
	}
	for _, xk := range d.Kernels {
		if xk.Mode != kir.Autorun {
			continue
		}
		u := m.newUnit(xk)
		if opts.AutorunSkew != nil {
			u.startAt = opts.AutorunSkew(xk.Name, xk.CU)
		}
		m.units = append(m.units, u)
	}
	if opts.Fault != nil {
		if err := m.installFaults(opts.Fault); err != nil && m.err == nil {
			m.err = err
		}
	}
	if len(opts.CaptureAt) > 0 && opts.OnCapture != nil {
		m.captures = append(m.captures, opts.CaptureAt...)
		sort.Slice(m.captures, func(i, j int) bool { return m.captures[i] < m.captures[j] })
		kept := m.captures[:0]
		for _, c := range m.captures {
			if c > m.cycle && (len(kept) == 0 || kept[len(kept)-1] != c) {
				kept = append(kept, c)
			}
		}
		m.captures = kept
	}
	return m
}

// Design returns the loaded design.
func (m *Machine) Design() *hls.Design { return m.d }

// Cycle returns the current simulation time.
func (m *Machine) Cycle() int64 { return m.cycle }

// Channel returns the named channel (nil if absent).
func (m *Machine) Channel(name string) *channel.Channel {
	c := m.d.Program.ChanByName(name)
	if c == nil {
		return nil
	}
	return m.chans[c.ID]
}

// NewBuffer allocates a global-memory buffer for kernel arguments. A
// duplicate name or bad size is reported as an error: buffer setup is the
// host program's public path, where misuse should not crash the process.
func (m *Machine) NewBuffer(name string, elem kir.Type, n int) (*mem.Buffer, error) {
	if _, dup := m.bufs[name]; dup {
		return nil, fmt.Errorf("sim: duplicate buffer %q", name)
	}
	bytes := int64(elem.Bits() / 8)
	if bytes == 0 {
		bytes = 1
	}
	b, err := m.Mem.Alloc(name, bytes, n)
	if err != nil {
		return nil, err
	}
	m.bufs[name] = b
	return b, nil
}

// Buffer returns a previously allocated buffer.
func (m *Machine) Buffer(name string) *mem.Buffer { return m.bufs[name] }

// Args binds kernel parameters by name: scalars as int64, arrays as
// *mem.Buffer.
type Args map[string]any

// Launch enqueues a single-task kernel. The returned unit exposes statistics
// after Run completes.
func (m *Machine) Launch(kernel string, args Args) (*Unit, error) {
	return m.launch(kernel, args, 0)
}

// LaunchND enqueues an NDRange kernel with globalSize work-items.
func (m *Machine) LaunchND(kernel string, globalSize int64, args Args) (*Unit, error) {
	if globalSize <= 0 {
		return nil, fmt.Errorf("sim: global size %d", globalSize)
	}
	return m.launch(kernel, args, globalSize)
}

func (m *Machine) launch(kernel string, args Args, globalSize int64) (*Unit, error) {
	units := m.d.KernelUnits(kernel)
	if len(units) == 0 {
		return nil, fmt.Errorf("sim: kernel %q not in design", kernel)
	}
	if len(units) > 1 {
		return nil, fmt.Errorf("sim: kernel %q is replicated; only autorun kernels replicate", kernel)
	}
	xk := units[0]
	switch {
	case xk.Mode == kir.Autorun:
		return nil, fmt.Errorf("sim: kernel %q is autorun and cannot be launched", kernel)
	case xk.Mode == kir.NDRange && globalSize == 0:
		return nil, fmt.Errorf("sim: NDRange kernel %q needs LaunchND", kernel)
	case xk.Mode != kir.NDRange && globalSize != 0:
		return nil, fmt.Errorf("sim: kernel %q is not NDRange", kernel)
	}

	u := m.newUnit(xk)
	u.globalSize = globalSize
	u.startAt = m.cycle + 1
	for _, p := range xk.Src.Params {
		a, ok := args[p.Name]
		if !ok {
			return nil, fmt.Errorf("sim: kernel %q: missing argument %q", kernel, p.Name)
		}
		switch p.Kind {
		case kir.ScalarParam:
			var v int64
			switch a := a.(type) {
			case int64:
				v = a
			case int:
				v = int64(a)
			default:
				return nil, fmt.Errorf("sim: kernel %q: argument %q must be an integer", kernel, p.Name)
			}
			u.scalars = append(u.scalars, scalarBind{slot: xk.ScalarSlots[p.Index], val: v})
		case kir.GlobalArray:
			buf, ok := a.(*mem.Buffer)
			if !ok {
				return nil, fmt.Errorf("sim: kernel %q: argument %q must be a *mem.Buffer", kernel, p.Name)
			}
			for i, site := range xk.LSUs {
				if site.Arr == p {
					u.lsus[i] = m.Mem.NewLSU(site.Kind, buf)
				}
			}
		}
	}
	for i, site := range xk.LSUs {
		if u.lsus[i] == nil {
			return nil, fmt.Errorf("sim: kernel %q: access site on %q has no bound buffer", kernel, site.Arr.Name)
		}
	}
	m.active = append(m.active, u)
	m.launched = append(m.launched, u)
	if m.obs != nil {
		m.obsLaunch(u)
	}
	return u, nil
}

// Step advances the machine n cycles unconditionally (autorun kernels keep
// running whether or not anything is launched).
func (m *Machine) Step(n int64) {
	for i := int64(0); i < n; i++ {
		m.tick()
		if m.capIdx < len(m.captures) && m.cycle >= m.captures[m.capIdx] {
			m.fireCaptures()
		}
	}
}

// fireCaptures delivers every capture whose cycle the machine has reached.
// Cycles the clock skipped past without landing on (possible only via Step
// callers jumping the grid — Run's fast-forward caps jumps at the next
// capture cycle) are dropped rather than delivered late with wrong state.
func (m *Machine) fireCaptures() {
	for m.capIdx < len(m.captures) && m.captures[m.capIdx] <= m.cycle {
		c := m.captures[m.capIdx]
		m.capIdx++
		if c == m.cycle {
			m.opts.OnCapture(m, c)
		}
	}
}

// Run advances until every launched kernel completes. On deadlock (no
// forward progress within StallLimit) or cycle overrun it returns a
// *DeadlockError carrying a structured DeadlockReport: per-unit wait states,
// the wait-for graph, and a one-line blame verdict.
func (m *Machine) Run() error { return m.run(-1) }

// RunFor advances like Run but gives up after budget cycles, returning a
// *DeadlockError whose report's Reason is ReasonBudget (Timeout() true). The
// machine stays consistent: a later Run or RunFor continues where this one
// stopped, which is what the host controller's retry loop relies on.
func (m *Machine) RunFor(budget int64) error { return m.run(budget) }

func (m *Machine) run(budget int64) error {
	if m.err != nil {
		return m.err // e.g. a fault plan targeting an unknown channel/kernel
	}
	start := m.cycle
	for len(m.active) > 0 {
		if budget >= 0 && m.cycle-start >= budget {
			return &DeadlockError{Report: m.DeadlockReport(ReasonBudget)}
		}
		m.tick()
		if m.capIdx < len(m.captures) && m.cycle >= m.captures[m.capIdx] {
			m.fireCaptures()
		}
		if m.err != nil {
			return m.err
		}
		if m.cycle-m.lastProgress > m.opts.StallLimit {
			return &DeadlockError{Report: m.DeadlockReport(ReasonStallLimit)}
		}
		if m.cycle > m.opts.MaxCycles {
			return &DeadlockError{Report: m.DeadlockReport(ReasonMaxCycles)}
		}
		if !m.workDone && m.fastForwardOK() {
			m.fastForward(start, budget)
			if m.capIdx < len(m.captures) && m.cycle >= m.captures[m.capIdx] {
				m.fireCaptures()
			}
		}
	}
	return nil
}

func (m *Machine) tick() {
	m.cycle++
	m.workDone = false
	m.applyFaults()
	// channels re-snapshot lazily: the dirty set built by their notify
	// callbacks replaces the old begin-of-cycle scan over every channel
	for _, u := range m.units {
		if m.stuck(u) {
			continue
		}
		u.tick(m.cycle)
	}
	stillActive := m.active[:0]
	for _, u := range m.active {
		if m.stuck(u) {
			stillActive = append(stillActive, u)
			continue
		}
		u.tick(m.cycle)
		if u.Done() {
			u.finishedAt = m.cycle
			if m.obs != nil {
				m.obsUnitFinished(u)
			}
			continue
		}
		stillActive = append(stillActive, u)
	}
	m.active = stillActive
	if len(m.dirtyChans) > 0 {
		for i, c := range m.dirtyChans {
			c.EndCycle()
			m.dirtyChans[i] = nil
		}
		m.dirtyChans = m.dirtyChans[:0]
	}
	for _, h := range m.cycleHooks {
		h(m.cycle)
	}
	if m.obs != nil {
		m.obsEndTick()
	}
}

// Unit is one kernel compute unit activation.
type Unit struct {
	m  *Machine
	xk *hls.XKernel

	top    *regionExec
	locals []*mem.LocalMem
	lsus   []*mem.LSU
	// scalars holds the launch's scalar bindings, copied into every top
	// context (a sparse slice: kernels have a handful of scalar params).
	scalars []scalarBind

	startAt    int64
	started    bool
	startedAt  int64 // first cycle the unit actually ticked
	finishedAt int64

	// NDRange progress
	globalSize int64
	issuedWI   int64
	doneWI     int64
	// single-task / autorun progress
	topDone bool

	// obsTrack/obsName cache the unit's interned observability IDs
	// ("unit:<name>" / "<name>"), filled lazily by obsUnitIDs so stall and
	// sample hooks never rebuild the name string (UnitName allocates for
	// replicated kernels).
	obsTrack, obsName obs.ID
	// obsSites is the per-access-site sample vocabulary (array/kind IDs),
	// filled lazily by obsSiteIDs.
	obsSites []obsSiteID

	// intrinsicState is indexed by XOp.StateIdx (dense, assigned during
	// lowering) — the hot path avoids a per-op map lookup.
	intrinsicState []any
	ienv           IntrinsicEnv
	// ctxPool / flowPool recycle retired iteration and work-item carriers.
	ctxPool  []*Ctx
	flowPool []*flow
	// block tracks the most recent blocked operation for hang diagnostics.
	block blockState
}

// scalarBind is one scalar kernel argument pinned to its slot.
type scalarBind struct {
	slot int
	val  int64
}

// blockState is a unit's structured record of what it is (or was last)
// waiting on — the raw material for DeadlockReport.
type blockState struct {
	op    *hls.XOp
	chID  int    // program channel id, -1 when not a channel op
	dir   string // "read" / "write" for channel ops, "" otherwise
	since int64  // first cycle of the current consecutive blockage
	last  int64  // most recent blocked cycle
}

func (m *Machine) newUnit(xk *hls.XKernel) *Unit {
	u := &Unit{
		m:    m,
		xk:   xk,
		lsus: make([]*mem.LSU, len(xk.LSUs)),
	}
	if xk.NumIBufStates > 0 {
		u.intrinsicState = make([]any, xk.NumIBufStates)
	}
	for _, la := range xk.Src.Locals {
		u.locals = append(u.locals, mem.NewLocalMem(fmt.Sprintf("%s.%s", xk.UnitName(), la.Name), la.Size))
	}
	u.top = buildRegionExec(u, xk.Root, func(c *Ctx) {
		if u.xk.Mode == kir.NDRange {
			u.doneWI++
		} else {
			u.topDone = true
		}
		u.freeCtx(c)
	})
	return u
}

// Kernel returns the underlying compute unit.
func (u *Unit) Kernel() *hls.XKernel { return u.xk }

// FinishedAt returns the cycle the launch completed (0 while running).
func (u *Unit) FinishedAt() int64 { return u.finishedAt }

// Local returns the unit's local memory by array index.
func (u *Unit) Local(i int) *mem.LocalMem { return u.locals[i] }

// LSU returns the unit's load/store unit for access site i.
func (u *Unit) LSU(i int) *mem.LSU { return u.lsus[i] }

// Done reports whether the activation has completed (never true for
// autorun).
func (u *Unit) Done() bool {
	switch u.xk.Mode {
	case kir.Autorun:
		return false
	case kir.NDRange:
		return u.started && u.doneWI >= u.globalSize
	default:
		return u.started && u.topDone
	}
}

func (u *Unit) autorun() bool { return u.xk.Mode == kir.Autorun }

func (u *Unit) noteProgress() {
	u.m.workDone = true
	if !u.autorun() {
		u.m.lastProgress = u.m.cycle
	}
}

// noteBlockedOp records that op could not proceed this cycle. Consecutive
// blockages on the same op accumulate into one wait interval; any progress
// in between restarts the clock.
func (u *Unit) noteBlockedOp(op *hls.XOp, now int64) {
	if u.block.op != op || u.block.last < now-1 {
		u.block.since = now
	}
	u.block.op = op
	u.block.last = now
	u.block.chID = -1
	u.block.dir = ""
	switch op.Kind {
	case kir.OpChanRead, kir.OpChanReadNB:
		u.block.chID, u.block.dir = op.ChID, "read"
	case kir.OpChanWrite, kir.OpChanWriteNB:
		u.block.chID, u.block.dir = op.ChID, "write"
	case kir.OpIBufLogic:
		if op.ChID >= 0 {
			u.block.chID, u.block.dir = op.ChID, "read"
		}
	}
}

func (u *Unit) tick(now int64) {
	if now < u.startAt {
		return
	}
	switch u.xk.Mode {
	case kir.NDRange:
		if !u.started {
			u.started = true
			u.startedAt = now
			u.m.workDone = true
		}
		if u.issuedWI < u.globalSize && u.top.canAccept() {
			c := u.newTopCtx(now)
			c.wiID = u.issuedWI
			u.issuedWI++
			u.m.workDone = true
			u.top.enter(u.newFlow(c))
		}
	default:
		if !u.started {
			u.started = true
			u.startedAt = now
			u.m.workDone = true
			u.top.enter(u.newFlow(u.newTopCtx(now)))
		}
	}
	u.top.tick(now)
}

// newTopCtx builds (or recycles) a top-level context with the launch's
// scalar arguments bound at the current cycle.
func (u *Unit) newTopCtx(now int64) *Ctx {
	c := u.allocCtx()
	for _, sb := range u.scalars {
		c.slots[sb.slot] = sb.val
		c.ready[sb.slot] = now
	}
	return c
}
