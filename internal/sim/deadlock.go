package sim

import (
	"fmt"
	"sort"
	"strings"

	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
	"oclfpga/internal/obs"
)

// Reason classifies why a Run gave up.
type Reason string

const (
	// ReasonStallLimit: no launched kernel made progress for StallLimit
	// cycles — the classic hung-fabric symptom the paper's debugging flow
	// targets.
	ReasonStallLimit Reason = "stall-limit"
	// ReasonMaxCycles: the run exceeded its cycle ceiling while kernels were
	// still (slowly) progressing.
	ReasonMaxCycles Reason = "max-cycles"
	// ReasonBudget: a bounded RunFor exhausted its budget. Not necessarily a
	// hang — DeadlockError.Timeout() reports true so callers can retry.
	ReasonBudget Reason = "budget"
	// ReasonWallClock: a supervisor's wall-clock watchdog expired while the
	// run was still in flight. The simulation itself is consistent (the
	// supervisor stops it between bounded slices); the report captures what
	// the fabric was doing when real time ran out.
	ReasonWallClock Reason = "wall-clock"
	// ReasonPanic: the run's goroutine panicked mid-simulation and a
	// supervisor converted the crash into a diagnosis instead of letting it
	// take the process down. Machine state may be mid-tick; the report is
	// best-effort.
	ReasonPanic Reason = "panic"
)

// WaitState is one compute unit's snapshot at diagnosis time: what op it is
// blocked on, which channel, and for how long. This is the per-unit row of
// the paper-style hang report.
type WaitState struct {
	Unit    string `json:"unit"` // unit name ("kernel" or "kernel[cu]")
	Kernel  string `json:"kernel"`
	CU      int    `json:"cu"`
	Autorun bool   `json:"autorun,omitempty"`

	Op        string `json:"op,omitempty"`        // blocked op (kir op name), "" if none recorded
	Channel   string `json:"channel,omitempty"`   // channel name when blocked on a channel op
	Dir       string `json:"dir,omitempty"`       // "read" or "write"
	Occupancy int    `json:"occupancy,omitempty"` // channel occupancy at diagnosis
	Depth     int    `json:"depth,omitempty"`     // channel capacity (0 = register channel)
	Since     int64  `json:"since"`               // first cycle of the current consecutive blockage
	Waited    int64  `json:"waited"`              // cycles spent in the current blockage

	Stuck  bool `json:"stuck,omitempty"`  // held by an injected stuck-unit fault
	Frozen bool `json:"frozen,omitempty"` // blocked endpoint frozen by an injected channel fault
}

func (w WaitState) describe() string {
	switch {
	case w.Stuck:
		return fmt.Sprintf("held by injected stuck-unit fault since cycle %d", w.Since)
	case w.Channel != "":
		s := fmt.Sprintf("blocked on channel %s %q (occupancy %d/%d) for %d cycles",
			w.Dir, w.Channel, w.Occupancy, w.Depth, w.Waited)
		if w.Frozen {
			s += fmt.Sprintf(" [%s endpoint frozen by fault injection]", w.Dir)
		}
		return s
	case w.Op != "":
		return fmt.Sprintf("blocked on %s for %d cycles", w.Op, w.Waited)
	default:
		return "no blocked op recorded (pipeline idle or waiting on schedule)"
	}
}

// DeadlockReport is the structured replacement for the old opaque deadlock
// error: every waiting unit's state, the wait-for graph between them, any
// circular wait, and a one-line blame verdict.
type DeadlockReport struct {
	Reason     Reason `json:"reason"`
	Cycle      int64  `json:"cycle"` // simulation time at diagnosis
	StallLimit int64  `json:"stallLimit"`
	MaxCycles  int64  `json:"maxCycles"`
	Active     int    `json:"active"` // launched kernels still running

	Waits []WaitState `json:"waits,omitempty"`
	// Edges are wait-for relations: Edges[i] = [waiter, waited-on unit].
	// A unit blocked writing channel c waits for c's readers; a unit blocked
	// reading waits for c's writers.
	Edges [][2]string `json:"edges,omitempty"`
	// CycleUnits is a circular wait among the waiting units (first repeated
	// unit omitted), empty when none was found.
	CycleUnits []string `json:"cycleUnits,omitempty"`
	// Blame is the one-line verdict naming the most likely culprit.
	Blame string `json:"blame"`
}

// String renders the report in the compiler-log style of the paper's
// profiler output.
func (r *DeadlockReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hang diagnosis @ cycle %d (%s) ==\n", r.Cycle, r.reasonLine())
	if len(r.Waits) == 0 {
		b.WriteString("  no waiting units recorded\n")
	}
	w := 0
	for _, ws := range r.Waits {
		if len(ws.Unit) > w {
			w = len(ws.Unit)
		}
	}
	for _, ws := range r.Waits {
		tag := "unit"
		if ws.Autorun {
			tag = "auto"
		}
		fmt.Fprintf(&b, "  %s %-*s : %s\n", tag, w, ws.Unit, ws.describe())
	}
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "  wait-for: %s -> %s\n", e[0], e[1])
	}
	if len(r.CycleUnits) > 0 {
		fmt.Fprintf(&b, "  circular wait: %s -> %s\n",
			strings.Join(r.CycleUnits, " -> "), r.CycleUnits[0])
	}
	fmt.Fprintf(&b, "  verdict: %s\n", r.Blame)
	return b.String()
}

func (r *DeadlockReport) reasonLine() string {
	switch r.Reason {
	case ReasonStallLimit:
		return fmt.Sprintf("no progress for %d cycles", r.StallLimit)
	case ReasonMaxCycles:
		return fmt.Sprintf("exceeded %d-cycle limit with %d kernels running", r.MaxCycles, r.Active)
	case ReasonBudget:
		return "run budget exhausted"
	case ReasonWallClock:
		return fmt.Sprintf("wall-clock watchdog expired with %d kernels running", r.Active)
	case ReasonPanic:
		return "run goroutine panicked"
	default:
		return string(r.Reason)
	}
}

// DeadlockError wraps a DeadlockReport as the error returned by Run/RunFor.
type DeadlockError struct {
	Report *DeadlockReport
}

// Timeout reports whether the error is a bounded-run budget expiry (a retry
// may still succeed) rather than a diagnosed hang.
func (e *DeadlockError) Timeout() bool { return e.Report.Reason == ReasonBudget }

func (e *DeadlockError) Error() string {
	r := e.Report
	var head string
	switch r.Reason {
	case ReasonStallLimit:
		head = fmt.Sprintf("sim: deadlock: no progress for %d cycles at cycle %d", r.StallLimit, r.Cycle)
	case ReasonMaxCycles:
		head = fmt.Sprintf("sim: exceeded %d cycles with %d kernels still running", r.MaxCycles, r.Active)
	case ReasonBudget:
		head = fmt.Sprintf("sim: run budget exhausted at cycle %d with %d kernels still running", r.Cycle, r.Active)
	case ReasonWallClock:
		head = fmt.Sprintf("sim: wall-clock watchdog expired at cycle %d with %d kernels still running", r.Cycle, r.Active)
	case ReasonPanic:
		head = fmt.Sprintf("sim: run goroutine panicked at cycle %d", r.Cycle)
	default:
		head = fmt.Sprintf("sim: run aborted (%s) at cycle %d", r.Reason, r.Cycle)
	}
	var waits []string
	for _, w := range r.Waits {
		waits = append(waits, fmt.Sprintf("%s %s", w.Unit, w.describe()))
	}
	if len(waits) > 0 {
		head += ": " + strings.Join(waits, "; ")
	}
	if r.Blame != "" {
		head += " — " + r.Blame
	}
	return head
}

// DeadlockReport diagnoses the machine's current wait structure. It is
// called by run() when giving up, and may also be called directly on a
// machine to inspect a live (stepped) simulation. The wait durations it
// renders come from blocked-since watermarks that fast-forward maintains
// across skipped windows (batchAdvance), and run() always steps the
// stall-limit deadline cycle for real, so reports carry the same cycle
// numbers whether or not quiescent windows were jumped.
func (m *Machine) DeadlockReport(reason Reason) *DeadlockReport {
	r := &DeadlockReport{
		Reason:     reason,
		Cycle:      m.cycle,
		StallLimit: m.opts.StallLimit,
		MaxCycles:  m.opts.MaxCycles,
		Active:     len(m.active),
	}

	// Launched kernels are always reported (they are what Run is waiting
	// for); autorun units only when they are demonstrably wedged — blocked
	// this cycle or held by a fault — to keep the report focused.
	for _, u := range m.active {
		r.Waits = append(r.Waits, m.waitState(u, false))
	}
	for _, u := range m.units {
		ws := m.waitState(u, true)
		if ws.Stuck || ws.Op != "" {
			r.Waits = append(r.Waits, ws)
		}
	}

	readers, writers := m.chanEndpoints()
	waiting := map[string]bool{}
	for _, w := range r.Waits {
		waiting[w.Unit] = true
	}
	adj := map[string][]string{}
	for _, w := range r.Waits {
		if w.Channel == "" {
			continue
		}
		chID := m.d.Program.ChanByName(w.Channel).ID
		var peers []string
		if w.Dir == "write" {
			peers = readers[chID]
		} else {
			peers = writers[chID]
		}
		for _, p := range peers {
			if p == w.Unit {
				continue
			}
			r.Edges = append(r.Edges, [2]string{w.Unit, p})
			if waiting[p] {
				adj[w.Unit] = append(adj[w.Unit], p)
			}
		}
	}
	r.CycleUnits = findCycle(adj)
	r.Blame = m.blameVerdict(r, readers, writers)
	// A budget expiry is a resumable pause, not a terminal diagnosis: a
	// supervisor slicing RunFor hits one per slice, and recording each would
	// make the telemetry stream depend on the slicing — breaking replay
	// recovery's byte-identity against an uninterrupted run.
	if m.obs != nil && reason != ReasonBudget {
		m.obs.rec.Instant(obs.KindBlame, "diagnosis", string(reason), m.cycle, r.Blame)
	}
	return r
}

func (m *Machine) waitState(u *Unit, autorun bool) WaitState {
	ws := WaitState{
		Unit:    u.xk.UnitName(),
		Kernel:  u.xk.Name,
		CU:      u.xk.CU,
		Autorun: autorun,
	}
	if m.stuck(u) {
		ws.Stuck = true
		ws.Since = m.stuckSinceCycle(u.xk.Name)
		ws.Waited = m.cycle - ws.Since
		return ws
	}
	b := u.block
	// only a blockage observed on the latest completed cycle counts as
	// "currently waiting"
	if b.op == nil || b.last < m.cycle-1 {
		return ws
	}
	ws.Op = b.op.Kind.String()
	ws.Since = b.since
	ws.Waited = m.cycle - b.since
	if b.chID >= 0 {
		ws.Channel = m.d.Program.Chans[b.chID].Name
		ws.Dir = b.dir
		ch := m.chans[b.chID]
		ws.Occupancy = ch.Len()
		ws.Depth = ch.Depth()
		_, ws.Frozen = m.frozenBy(b.chID, b.dir)
	}
	return ws
}

// chanEndpoints derives, from the design's op trees, which units read and
// which write each channel — the static connectivity the wait-for graph
// needs.
func (m *Machine) chanEndpoints() (readers, writers map[int][]string) {
	readers, writers = map[int][]string{}, map[int][]string{}
	add := func(set map[int][]string, chID int, unit string) {
		for _, u := range set[chID] {
			if u == unit {
				return
			}
		}
		set[chID] = append(set[chID], unit)
	}
	for _, xk := range m.d.Kernels {
		name := xk.UnitName()
		xk.Root.WalkOps(func(op *hls.XOp) {
			if op.ChID < 0 {
				return
			}
			switch op.Kind {
			case kir.OpChanRead, kir.OpChanReadNB:
				add(readers, op.ChID, name)
			case kir.OpChanWrite, kir.OpChanWriteNB:
				add(writers, op.ChID, name)
			case kir.OpIBufLogic:
				// the HDL ibuffer intrinsic ingests its ChID channel
				add(readers, op.ChID, name)
			}
		})
	}
	return readers, writers
}

// findCycle returns one cycle in the wait-for graph (DFS three-colour),
// or nil. Node order is made deterministic by sorting.
func findCycle(adj map[string][]string) []string {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cyc []string

	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, p := range adj[n] {
			switch color[p] {
			case grey:
				// unwind the stack to the repeated node
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == p {
						cyc = append([]string{}, stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(p) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			return cyc
		}
	}
	return nil
}

// blameVerdict applies a fixed-priority heuristic: injected faults first
// (they are ground truth), then circular waits, then absent counterparts,
// then the longest wait.
func (m *Machine) blameVerdict(r *DeadlockReport, readers, writers map[int][]string) string {
	// 1. a waiting unit's blocked endpoint is frozen by fault injection
	for _, w := range r.Waits {
		if w.Frozen {
			side := "consumer"
			if w.Dir == "write" {
				side = "producer"
			}
			return fmt.Sprintf("fault injection froze the %s side of channel %q; unit %s %s",
				side, w.Channel, w.Unit, w.describe())
		}
	}
	// 1b. a waiting unit's channel has its *other* endpoint frozen (e.g. the
	// producer is blocked because the consumer's read side is frozen)
	for _, w := range r.Waits {
		if w.Channel == "" {
			continue
		}
		chID := m.d.Program.ChanByName(w.Channel).ID
		if side := m.channelFrozen(chID); side != "" {
			return fmt.Sprintf("fault injection froze the %s side of channel %q; unit %s %s",
				side, w.Channel, w.Unit, w.describe())
		}
	}
	// 2. a stuck unit
	for _, w := range r.Waits {
		if w.Stuck {
			return fmt.Sprintf("unit %s is held by an injected stuck-unit fault since cycle %d; everything downstream of it backs up", w.Unit, w.Since)
		}
	}
	// 3. circular wait
	if len(r.CycleUnits) > 0 {
		return fmt.Sprintf("circular wait: %s -> %s (channel capacities cannot satisfy the communication pattern; see §3.1 on compiler-altered channel depths)",
			strings.Join(r.CycleUnits, " -> "), r.CycleUnits[0])
	}
	// 4. counterpart finished or never launched
	running := map[string]bool{}
	for _, u := range m.units {
		running[u.xk.UnitName()] = true
	}
	for _, u := range m.active {
		running[u.xk.UnitName()] = true
	}
	for _, w := range r.Waits {
		if w.Channel == "" {
			continue
		}
		chID := m.d.Program.ChanByName(w.Channel).ID
		var peers []string
		role := "consumer"
		if w.Dir == "write" {
			peers = readers[chID]
		} else {
			peers = writers[chID]
			role = "producer"
		}
		if len(peers) == 0 {
			return fmt.Sprintf("channel %q has no %s in the design; unit %s can never proceed", w.Channel, role, w.Unit)
		}
		alive := false
		for _, p := range peers {
			if running[p] {
				alive = true
				break
			}
		}
		if !alive {
			return fmt.Sprintf("the %s of channel %q (%s) is not running (finished or never launched); unit %s %s",
				role, w.Channel, strings.Join(peers, ", "), w.Unit, w.describe())
		}
	}
	// 5. longest wait
	var longest *WaitState
	for i := range r.Waits {
		w := &r.Waits[i]
		if w.Op == "" {
			continue
		}
		if longest == nil || w.Waited > longest.Waited {
			longest = w
		}
	}
	if longest != nil {
		return fmt.Sprintf("longest wait: unit %s %s", longest.Unit, longest.describe())
	}
	switch r.Reason {
	case ReasonBudget:
		return "run budget exhausted; no unit is blocked — the workload may simply need more cycles"
	case ReasonWallClock:
		return "wall-clock watchdog expired; no unit is blocked — the workload may simply be slow to simulate"
	case ReasonPanic:
		return "run goroutine panicked; the report snapshots the fabric at the crash"
	}
	return "no unit reports a blocked op; the design may be spinning without forward progress"
}
