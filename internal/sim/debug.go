package sim

import (
	"fmt"
	"strings"
)

// DumpState renders a snapshot of every unit's pipeline occupancy — which
// flows sit at which stages, and each loop engine's resident progress. It is
// the tool of last resort when a design hangs.
func (m *Machine) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle %d\n", m.cycle)
	all := append(append([]*Unit{}, m.units...), m.active...)
	for _, u := range all {
		fmt.Fprintf(&sb, "unit %s (started=%v done=%v)\n", u.xk.UnitName(), u.started, u.Done())
		dumpRegion(&sb, u.top, 1)
	}
	return sb.String()
}

func dumpRegion(sb *strings.Builder, re *regionExec, depth int) {
	ind := strings.Repeat("  ", depth)
	for i, it := range re.items {
		switch it := it.(type) {
		case *segExec:
			if len(it.flows) == 0 {
				continue
			}
			fmt.Fprintf(sb, "%sitem %d segment(depth %d): ", ind, i, it.seg.Depth)
			for _, f := range it.flows {
				fmt.Fprintf(sb, "[stage %d op %d iter %d] ", f.stage, f.opPtr, f.c.iter)
			}
			sb.WriteByte('\n')
			// report what each flow with pending ops is blocked on
			for fi, f := range it.flows {
				if f.stage >= len(it.byStage) || f.opPtr >= len(it.byStage[f.stage]) {
					continue
				}
				op := it.byStage[f.stage][f.opPtr]
				fmt.Fprintf(sb, "%s  flow %d blocked on %s dst=%d guard=%d args=", ind, fi, op.Kind, op.Dst, op.Guard)
				for _, a := range op.Args {
					fmt.Fprintf(sb, "%d(ready=%d) ", a, f.c.readyAt(a))
				}
				if op.Guard >= 0 {
					fmt.Fprintf(sb, "guardReady=%d", f.c.readyAt(op.Guard))
				}
				sb.WriteByte('\n')
			}
			if it.stallUntil > 0 {
				fmt.Fprintf(sb, "%s  stallUntil=%d\n", ind, it.stallUntil)
			}
		case *loopExec:
			if len(it.residents) == 0 {
				continue
			}
			fmt.Fprintf(sb, "%sitem %d loop %q (II=%d mt=%v):\n", ind, i, it.r.Label, it.r.II, it.multithread)
			for _, r := range it.residents {
				fmt.Fprintf(sb, "%s  resident %d: eval=%v next=%d/%d inflight=%d\n",
					ind, r.id, r.evaluated, r.nextIter, r.total, r.inflight)
			}
			dumpRegion(sb, it.body, depth+1)
		}
	}
}
