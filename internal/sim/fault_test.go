package sim

import (
	"errors"
	"strings"
	"testing"

	"oclfpga/internal/fault"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

// pipeProgram is the canonical producer -> "pipe" -> consumer pair the
// paper's channel-stall analysis (§4.2) is built around.
func pipeProgram(n int64, depth int) *kir.Program {
	p := kir.NewProgram("pipetest")
	ch := p.AddChan("pipe", depth, kir.I32)
	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", n, nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(ch, lb.Load(src, i))
		return nil
	})
	cons := p.AddKernel("consumer", kir.SingleTask)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", n, nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.Store(dst, i, lb.ChanRead(ch))
		return nil
	})
	return p
}

func launchPipe(t *testing.T, m *Machine, n int) {
	t.Helper()
	src := must(m.NewBuffer("src", kir.I32, n))
	must(m.NewBuffer("dst", kir.I32, n))
	for i := range src.Data {
		src.Data[i] = int64(i) * 3
	}
	if _, err := m.Launch("producer", Args{"src": src}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("consumer", Args{"dst": m.Buffer("dst")}); err != nil {
		t.Fatal(err)
	}
}

func plan(t *testing.T, specs string) *fault.Plan {
	t.Helper()
	p, err := fault.ParseSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The acceptance scenario: freeze the consumer's read endpoint mid-stream and
// require the diagnosis to name the producer's blocked channel write, the
// occupancy, and the injected fault.
func TestFrozenConsumerDiagnosis(t *testing.T) {
	d := compile(t, pipeProgram(512, 4), hls.Options{})
	m := New(d, Options{StallLimit: 400, Fault: plan(t, "freeze-read:pipe@50")})
	launchPipe(t, m, 512)

	err := m.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	r := de.Report
	if r.Reason != ReasonStallLimit {
		t.Fatalf("reason = %q", r.Reason)
	}
	if de.Timeout() {
		t.Fatal("a diagnosed hang must not be a Timeout")
	}

	byKernel := map[string]WaitState{}
	for _, w := range r.Waits {
		byKernel[w.Kernel] = w
	}
	pw, ok := byKernel["producer"]
	if !ok {
		t.Fatalf("producer missing from waits: %+v", r.Waits)
	}
	if pw.Channel != "pipe" || pw.Dir != "write" {
		t.Fatalf("producer wait = %+v, want blocked write on pipe", pw)
	}
	if pw.Occupancy != 4 || pw.Depth != 4 {
		t.Fatalf("producer occupancy = %d/%d, want 4/4", pw.Occupancy, pw.Depth)
	}
	cw, ok := byKernel["consumer"]
	if !ok || cw.Channel != "pipe" || cw.Dir != "read" || !cw.Frozen {
		t.Fatalf("consumer wait = %+v, want frozen blocked read on pipe", cw)
	}

	if len(r.Edges) < 2 {
		t.Fatalf("edges = %v, want producer<->consumer wait-for relation", r.Edges)
	}
	if len(r.CycleUnits) == 0 {
		t.Fatalf("frozen pipe should present as a circular wait: %+v", r)
	}
	for _, part := range []string{"fault injection", "read", "pipe"} {
		if !strings.Contains(r.Blame, part) {
			t.Fatalf("blame %q missing %q", r.Blame, part)
		}
	}
	// the rendered report and the error string both carry the essentials
	for _, s := range []string{r.String(), de.Error()} {
		for _, part := range []string{"pipe", "producer", "consumer"} {
			if !strings.Contains(s, part) {
				t.Fatalf("rendering missing %q:\n%s", part, s)
			}
		}
	}
}

func TestStuckUnitBlame(t *testing.T) {
	d := compile(t, pipeProgram(128, 4), hls.Options{})
	m := New(d, Options{StallLimit: 300, Fault: plan(t, "stuck:producer@20")})
	launchPipe(t, m, 128)

	err := m.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	var stuck *WaitState
	for i := range de.Report.Waits {
		if de.Report.Waits[i].Kernel == "producer" {
			stuck = &de.Report.Waits[i]
		}
	}
	if stuck == nil || !stuck.Stuck {
		t.Fatalf("producer not reported stuck: %+v", de.Report.Waits)
	}
	if !strings.Contains(de.Report.Blame, "stuck-unit") || !strings.Contains(de.Report.Blame, "producer") {
		t.Fatalf("blame = %q", de.Report.Blame)
	}
}

func TestMaxCyclesReason(t *testing.T) {
	d := compile(t, pipeProgram(256, 4), hls.Options{})
	m := New(d, Options{MaxCycles: 60, StallLimit: 1_000_000})
	launchPipe(t, m, 256)
	err := m.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if de.Report.Reason != ReasonMaxCycles {
		t.Fatalf("reason = %q", de.Report.Reason)
	}
	if de.Report.Active == 0 {
		t.Fatal("kernels should still be running at the cycle ceiling")
	}
	if !strings.Contains(de.Error(), "exceeded 60 cycles") {
		t.Fatalf("error = %q", de.Error())
	}
}

func TestRunForBudgetAndResume(t *testing.T) {
	d := compile(t, pipeProgram(256, 4), hls.Options{})
	m := New(d, Options{})
	launchPipe(t, m, 256)

	err := m.RunFor(10)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want budget *DeadlockError, got %v", err)
	}
	if de.Report.Reason != ReasonBudget || !de.Timeout() {
		t.Fatalf("want retryable budget expiry, got %+v", de.Report)
	}
	// a bounded run is resumable: keep granting budget until it completes
	for i := 0; err != nil; i++ {
		if !errors.As(err, &de) || !de.Timeout() {
			t.Fatalf("resume attempt %d: %v", i, err)
		}
		if i > 10_000 {
			t.Fatal("run never completed")
		}
		err = m.RunFor(100)
	}
	dst := m.Buffer("dst")
	for i, v := range dst.Data {
		if v != int64(i)*3 {
			t.Fatalf("dst[%d] = %d after resumed run", i, v)
		}
	}
}

func TestDropNBCountsDropped(t *testing.T) {
	// the autorun timer publishes via non-blocking writes; a drop-nb fault
	// must lose words loudly (Stats.Dropped), never silently
	d := compile(t, timerProgram(), hls.Options{})
	m := New(d, Options{Fault: plan(t, "drop-nb:time_ch1@0+40")})
	bx := must(m.NewBuffer("x", kir.I32, 100))
	bz := must(m.NewBuffer("z", kir.I64, 2))
	if _, err := m.Launch("dut", Args{"x": bx, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Channel("time_ch1").Stats().Dropped; got == 0 {
		t.Fatal("drop-nb fault recorded no dropped writes")
	}
	if m.Channel("time_ch2").Stats().Dropped != 0 {
		t.Fatal("untargeted channel dropped writes")
	}
}

func TestDepthOverride(t *testing.T) {
	d := compile(t, pipeProgram(64, 1), hls.Options{})
	m := New(d, Options{Fault: plan(t, "depth:pipe@0=8")})
	launchPipe(t, m, 64)
	m.Step(1) // faults are applied as simulated time passes
	if got := m.Channel("pipe").Depth(); got != 8 {
		t.Fatalf("depth = %d after override, want 8", got)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("deepened pipe must still drain correctly: %v", err)
	}
	dst := m.Buffer("dst")
	for i, v := range dst.Data {
		if v != int64(i)*3 {
			t.Fatalf("dst[%d] = %d", i, v)
		}
	}
}

func TestMemDelaySlowsRun(t *testing.T) {
	run := func(p *fault.Plan) int64 {
		d := compile(t, pipeProgram(128, 4), hls.Options{})
		m := New(d, Options{Fault: p})
		launchPipe(t, m, 128)
		u := m.active[len(m.active)-1] // consumer
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return u.FinishedAt()
	}
	base := run(nil)
	slow := run(plan(t, "mem-delay@0=50"))
	if slow <= base {
		t.Fatalf("mem-delay run finished at %d, baseline %d", slow, base)
	}
}

func TestLaunchSkewDelaysAutorun(t *testing.T) {
	run := func(p *fault.Plan) int64 {
		d := compile(t, timerProgram(), hls.Options{})
		m := New(d, Options{Fault: p})
		bx := must(m.NewBuffer("x", kir.I32, 100))
		bz := must(m.NewBuffer("z", kir.I64, 2))
		u, err := m.Launch("dut", Args{"x": bx, "z": bz})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return u.FinishedAt()
	}
	base := run(nil)
	skewed := run(plan(t, "skew:timer_srv@0=200"))
	// the dut blocks on the timer's first timestamp, so a 200-cycle launch
	// skew pushes its completion out by roughly that much
	if skewed < base+150 {
		t.Fatalf("skewed run finished at %d, baseline %d — skew not applied", skewed, base)
	}
}

func TestUnknownFaultTargetsError(t *testing.T) {
	d := compile(t, pipeProgram(16, 4), hls.Options{})
	m := New(d, Options{Fault: plan(t, "freeze-read:nosuch@0")})
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-channel install error, got %v", err)
	}

	m2 := New(d, Options{Fault: plan(t, "stuck:ghost@0")})
	if err := m2.Run(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("want unknown-kernel install error, got %v", err)
	}
}

func TestTransientFreezeRecovers(t *testing.T) {
	// a bounded freeze stalls the stream but the run completes correctly
	// once the fault window closes — no corruption, no diagnosis
	d := compile(t, pipeProgram(128, 4), hls.Options{})
	m := New(d, Options{Fault: plan(t, "freeze-write:pipe@40+120")})
	launchPipe(t, m, 128)
	if err := m.Run(); err != nil {
		t.Fatalf("transient fault should not hang the run: %v", err)
	}
	dst := m.Buffer("dst")
	for i, v := range dst.Data {
		if v != int64(i)*3 {
			t.Fatalf("dst[%d] = %d after transient freeze", i, v)
		}
	}
}

func TestDeadlockReportOnLiveMachine(t *testing.T) {
	// DeadlockReport is also a live inspection tool on a stepped machine
	d := compile(t, pipeProgram(512, 4), hls.Options{})
	m := New(d, Options{Fault: plan(t, "freeze-read:pipe@10")})
	launchPipe(t, m, 512)
	m.Step(200)
	r := m.DeadlockReport(ReasonStallLimit)
	if len(r.Waits) == 0 || r.Blame == "" {
		t.Fatalf("live report empty: %+v", r)
	}
	if !strings.Contains(r.String(), "hang diagnosis") {
		t.Fatalf("report rendering: %s", r)
	}
}
