package sim

import (
	"fmt"

	"oclfpga/internal/obs/query"
)

// Breakpointed re-execution (DESIGN.md §14). RunBreaks advances the machine
// cycle by cycle — no fast-forward, so watch conditions are evaluated at
// every cycle — until a breakpoint/watchpoint spec (obs/query's ParseBreaks
// grammar) fires, the launched work completes, or a simulation error
// surfaces. Determinism makes the halt exact and repeatable: the same
// design, arguments, and fault plan hit the same spec at the same cycle
// every run.

// BreakHit reports the first spec that fired.
type BreakHit struct {
	// Spec is the firing spec in canonical syntax (Break.String()).
	Spec  string `json:"spec"`
	Cycle int64  `json:"cycle"`
	Unit  string `json:"unit,omitempty"`
	Chan  string `json:"chan,omitempty"`
	Dir   string `json:"dir,omitempty"`
	// Value is the observed quantity: the stall length for stall breaks, the
	// occupancy for len breaks, the cycle for cycle and unit-state breaks.
	Value int64 `json:"value"`
}

// compiledBreak is a spec with its target resolved to runtime handles.
type compiledBreak struct {
	b    query.Break
	chID int // program channel id for chan breaks
}

// RunBreaks runs the launched work under the given breakpoint specs and
// returns the first hit (nil when the run completes without one). Unknown
// channel or unit targets are an error up front, before any cycle advances.
// Specs are checked in order each cycle; within a spec, units in creation
// order — the first hit is deterministic. When every launch completes with
// only cycle=N breaks still ahead, the autorun fabric is stepped on until
// the last such N so late cycle breaks still fire.
func (m *Machine) RunBreaks(breaks []query.Break) (*BreakHit, error) {
	if m.err != nil {
		return nil, m.err
	}
	if len(breaks) == 0 {
		return nil, fmt.Errorf("sim: RunBreaks: no specs")
	}
	compiled := make([]compiledBreak, len(breaks))
	for i, b := range breaks {
		cb := compiledBreak{b: b, chID: -1}
		switch b.Kind {
		case query.BreakChanStall, query.BreakChanLen:
			c := m.d.Program.ChanByName(b.Target)
			if c == nil {
				return nil, fmt.Errorf("sim: break %q: unknown channel %q", b, b.Target)
			}
			cb.chID = c.ID
		case query.BreakUnitState:
			if m.unitByName(b.Target) == nil {
				return nil, fmt.Errorf("sim: break %q: unknown unit %q", b, b.Target)
			}
		}
		compiled[i] = cb
	}
	lastCycleBreak := int64(-1)
	for _, b := range breaks {
		if b.Kind == query.BreakCycle && b.N > lastCycleBreak {
			lastCycleBreak = b.N
		}
	}
	for len(m.active) > 0 || m.cycle < lastCycleBreak {
		m.tick()
		if m.err != nil {
			return nil, m.err
		}
		if hit := m.checkBreaks(compiled); hit != nil {
			return hit, nil
		}
		if len(m.active) > 0 && m.cycle-m.lastProgress > m.opts.StallLimit {
			return nil, &DeadlockError{Report: m.DeadlockReport(ReasonStallLimit)}
		}
		if m.cycle > m.opts.MaxCycles {
			return nil, &DeadlockError{Report: m.DeadlockReport(ReasonMaxCycles)}
		}
	}
	return nil, nil
}

func (m *Machine) unitByName(name string) *Unit {
	for _, u := range m.units {
		if u.xk.UnitName() == name {
			return u
		}
	}
	for _, u := range m.launched {
		if u.xk.UnitName() == name {
			return u
		}
	}
	return nil
}

func (m *Machine) checkBreaks(compiled []compiledBreak) *BreakHit {
	for i := range compiled {
		cb := &compiled[i]
		switch cb.b.Kind {
		case query.BreakCycle:
			if m.cycle == cb.b.N {
				return &BreakHit{Spec: cb.b.String(), Cycle: m.cycle, Value: m.cycle}
			}
		case query.BreakChanLen:
			if n := m.chans[cb.chID].Len(); int64(n) > cb.b.N {
				return &BreakHit{
					Spec: cb.b.String(), Cycle: m.cycle,
					Chan: cb.b.Target, Value: int64(n),
				}
			}
		case query.BreakChanStall:
			if hit := m.checkChanStall(cb); hit != nil {
				return hit
			}
		case query.BreakUnitState:
			u := m.unitByName(cb.b.Target)
			if m.unitStateName(u) == cb.b.State {
				return &BreakHit{
					Spec: cb.b.String(), Cycle: m.cycle,
					Unit: cb.b.Target, Value: m.cycle,
				}
			}
		}
	}
	return nil
}

// checkChanStall fires when any unit has been blocked on the watched channel
// (in the watched direction) for more than N consecutive cycles, evaluated
// against blockages current this very cycle.
func (m *Machine) checkChanStall(cb *compiledBreak) *BreakHit {
	check := func(u *Unit) *BreakHit {
		b := &u.block
		if b.op == nil || b.chID != cb.chID || b.last != m.cycle {
			return nil
		}
		if cb.b.Dir != "" && b.dir != cb.b.Dir {
			return nil
		}
		if waited := m.cycle - b.since; waited > cb.b.N {
			return &BreakHit{
				Spec: cb.b.String(), Cycle: m.cycle,
				Unit: u.xk.UnitName(), Chan: cb.b.Target, Dir: b.dir, Value: waited,
			}
		}
		return nil
	}
	for _, u := range m.units {
		if hit := check(u); hit != nil {
			return hit
		}
	}
	for _, u := range m.launched {
		if hit := check(u); hit != nil {
			return hit
		}
	}
	return nil
}
