package sim

import (
	"fmt"
	"sort"
	"strings"
)

// ChannelProfile is one channel's accumulated activity — the kind of
// information the vendor's built-in profiling inserts counters for (paper
// §6: "accumulated bandwidth and channel stalls"). The paper's framework
// complements this coarse view with the ibuffer's per-event insight.
type ChannelProfile struct {
	Name         string `json:"name"`
	Depth        int    `json:"depth"`
	Writes       int64  `json:"writes"`
	Reads        int64  `json:"reads"`
	WriteStalls  int64  `json:"writeStalls"`
	ReadStalls   int64  `json:"readStalls"`
	MaxOccupancy int    `json:"maxOccupancy"`
}

// LSUProfile is one global-memory access site's accumulated activity.
type LSUProfile struct {
	Unit    string `json:"unit"`
	Array   string `json:"array"`
	Kind    string `json:"kind"`
	IsStore bool   `json:"isStore"`

	Loads        int64   `json:"loads"`
	Stores       int64   `json:"stores"`
	LineFetches  int64   `json:"lineFetches"`
	CoalesceHits int64   `json:"coalesceHits"`
	AvgLoadLat   float64 `json:"avgLoadLat"`
	MaxLoadLat   int64   `json:"maxLoadLat"`
}

// ProfileReport aggregates board-level counters after (or during) a run.
type ProfileReport struct {
	Cycle    int64            `json:"cycle"`
	Channels []ChannelProfile `json:"channels,omitempty"`
	LSUs     []LSUProfile     `json:"lsus,omitempty"`
}

// Profile snapshots the accumulated channel and LSU counters. Pass the
// launched units whose memory behaviour should be included (finished units
// keep their counters). Every counter here is fast-forward-exact: windows
// the machine skips batch-advance the same write/read stall totals the
// per-cycle path would have accumulated (see batchAdvance in
// fastforward.go), so profiles are identical either way — asserted by the
// equivalence suite.
func (m *Machine) Profile(units ...*Unit) ProfileReport {
	r := ProfileReport{Cycle: m.cycle}
	for i, ch := range m.chans {
		st := ch.Stats()
		if st.Writes == 0 && st.Reads == 0 && st.WriteStalls == 0 && st.ReadStalls == 0 {
			continue
		}
		r.Channels = append(r.Channels, ChannelProfile{
			Name:         m.d.Program.Chans[i].Name,
			Depth:        m.d.ChanDepth[i],
			Writes:       st.Writes,
			Reads:        st.Reads,
			WriteStalls:  st.WriteStalls,
			ReadStalls:   st.ReadStalls,
			MaxOccupancy: st.MaxOccupancy,
		})
	}
	for _, u := range units {
		for i, site := range u.xk.LSUs {
			lsu := u.lsus[i]
			if lsu == nil {
				continue
			}
			st := lsu.Stats()
			r.LSUs = append(r.LSUs, LSUProfile{
				Unit:         u.xk.UnitName(),
				Array:        site.Arr.Name,
				Kind:         site.Kind.String(),
				IsStore:      site.IsStore,
				Loads:        st.Loads,
				Stores:       st.Stores,
				LineFetches:  st.LineFetches,
				CoalesceHits: st.CoalesceHits,
				AvgLoadLat:   st.AvgLoadLatency(),
				MaxLoadLat:   st.MaxLoadLat,
			})
		}
	}
	sort.Slice(r.Channels, func(i, j int) bool { return r.Channels[i].Name < r.Channels[j].Name })
	// LSU rows sort like the channel rows do: the caller's unit order must
	// not leak into the report, or its text/JSON output churns between runs
	// that profile the same design from different call sites.
	sort.Slice(r.LSUs, func(i, j int) bool {
		a, b := r.LSUs[i], r.LSUs[j]
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return !a.IsStore && b.IsStore
	})
	return r
}

// String renders the report like a vendor profiler summary.
func (r ProfileReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile @ cycle %d\n", r.Cycle)
	if len(r.Channels) > 0 {
		sb.WriteString("channels:\n")
		fmt.Fprintf(&sb, "  %-24s %6s %9s %9s %8s %8s %6s\n",
			"name", "depth", "writes", "reads", "w-stall", "r-stall", "maxocc")
		for _, c := range r.Channels {
			fmt.Fprintf(&sb, "  %-24s %6d %9d %9d %8d %8d %6d\n",
				c.Name, c.Depth, c.Writes, c.Reads, c.WriteStalls, c.ReadStalls, c.MaxOccupancy)
		}
	}
	if len(r.LSUs) > 0 {
		sb.WriteString("memory access sites:\n")
		fmt.Fprintf(&sb, "  %-12s %-10s %-16s %8s %8s %8s %9s %8s %7s\n",
			"unit", "array", "lsu", "loads", "stores", "lines", "coalesce", "avg-lat", "max-lat")
		for _, l := range r.LSUs {
			dir := "load"
			if l.IsStore {
				dir = "store"
			}
			fmt.Fprintf(&sb, "  %-12s %-10s %-16s %8d %8d %8d %9d %8.1f %7d\n",
				l.Unit, l.Array, l.Kind+"/"+dir, l.Loads, l.Stores, l.LineFetches,
				l.CoalesceHits, l.AvgLoadLat, l.MaxLoadLat)
		}
	}
	return sb.String()
}

// BandwidthBytes estimates the bytes moved by the profiled LSUs, assuming
// the machine's line size per fetch.
func (r ProfileReport) BandwidthBytes(lineBytes int64) int64 {
	var lines int64
	for _, l := range r.LSUs {
		lines += l.LineFetches
	}
	return lines * lineBytes
}
