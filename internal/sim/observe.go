package sim

import (
	"fmt"

	"oclfpga/internal/channel"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
)

// Observability wiring. The machine carries an optional obsState; every hook
// on the hot path is guarded by a single `m.obs != nil` check so a machine
// without Options.Observe pays one predictable branch, and the recorder is
// event-driven rather than cycle-driven, so — unlike the VCD recorder's
// cycle hook — enabling it does not force the per-cycle slow path.
//
// The hooks record through the recorder's interned-ID API: the event
// vocabulary (kinds, channel tracks, stall direction names, per-unit tracks)
// is interned once — at init, at launch, or lazily on a unit's first event —
// and each recorded event is one fixed-width append with no string
// concatenation or per-event allocation (see obs/flat.go). Sample snapshots
// pack their counters into the recorder's flat sample stream the same way
// (see obs/sampleflat.go).
//
// Fast-forward exactness contract: events are only emitted at cycles the
// machine executes for real in both modes (launches, fault boundaries, unit
// finishes, deadline and sample cycles), and the one piece of open state —
// channel stall spans — is batch-extended across skipped windows at exactly
// the points batchRegion charges the equivalent stall counters. The
// equivalence suite asserts timelines and samples are byte-identical with
// skipping on and off; fast-forward jump events, which exist only when
// skipping is on, live on the separate Timeline.FFJumps track.

// obsState is the per-machine observability state.
type obsState struct {
	rec         *obs.Recorder
	sampleEvery int64
	// nextSampleAt is the next sampling-grid cycle, kept in step by
	// obsEndTick and fastForward so the per-tick grid check is one equality
	// instead of a modulo.
	nextSampleAt int64
	// ckptEvery/nextCkptAt mirror the sampling grid for rewind checkpoints
	// (DESIGN.md §14): obsEndTick emits on the slow path, fastForward splits
	// its jumps at grid cycles so mid-window checkpoints capture exactly the
	// per-cycle state.
	ckptEvery  int64
	nextCkptAt int64
	// stalls tracks one open blocked-interval per channel endpoint,
	// indexed [chID][dir] with dir 0 = read, 1 = write.
	stalls [][2]stallSpan
	// launched remembers every launched unit so finalize and sampling can
	// visit them after they leave m.active.
	launched  []*Unit
	finalized bool
	// sinkErr is the downstream sink's Finalize error, surfaced through
	// Machine.ObserveErr.
	sinkErr error

	// Interned event vocabulary, resolved once at init so the hot path
	// records by ID.
	kLaunch, kUnitRun, kChanStall, kLineFetch obs.ID
	nLaunch, nRun                             obs.ID
	// Checkpoint vocabulary, interned lazily on the first emission so a
	// machine without checkpoints leaves the recorder's string table — and
	// therefore its flat snapshot — untouched.
	kCkpt, ckptTrack, ckptName obs.ID
	dirNames                   [2]obs.ID // read-stall, write-stall
	chanTracks                 []obs.ID  // "chan:<name>" by channel ID
	chanNames                  []obs.ID  // raw channel name by channel ID
}

// obsSiteID is a memory access site's sample vocabulary, interned once per
// unit (see obsSiteIDs) so the sampling walk records by ID.
type obsSiteID struct {
	arr, kind obs.ID
	isStore   bool
}

// stallSpan is one in-progress consecutive blockage of a channel endpoint.
// unit is the interned name of the compute unit whose refused attempt opened
// the span — the attribution key the analyze package groups by. Opening
// happens only on real ticks (the batch path merely extends), so the opener
// is identical with fast-forward on or off.
type stallSpan struct {
	since, last int64
	unit        obs.ID
	open        bool
}

// initObserve attaches a recorder; called from New after channels exist (so
// their tracks intern eagerly) and before faults install (so launch-skew
// instants land on the timeline).
func (m *Machine) initObserve(cfg *obs.Config) {
	rec := obs.NewRecorder(m.d.Program.Name, *cfg)
	o := &obsState{
		rec:         rec,
		sampleEvery: cfg.SampleEvery,
		stalls:      make([][2]stallSpan, len(m.chans)),
		kLaunch:     rec.Intern(obs.KindLaunch),
		kUnitRun:    rec.Intern(obs.KindUnitRun),
		kChanStall:  rec.Intern(obs.KindChanStall),
		kLineFetch:  rec.Intern(obs.KindLineFetch),
		nLaunch:     rec.Intern("launch"),
		nRun:        rec.Intern("run"),
		dirNames:    [2]obs.ID{rec.Intern("read-stall"), rec.Intern("write-stall")},
		chanTracks:  make([]obs.ID, len(m.chans)),
		chanNames:   make([]obs.ID, len(m.chans)),
	}
	for i := range m.chans {
		o.chanTracks[i] = rec.Intern("chan:" + m.d.Program.Chans[i].Name)
		o.chanNames[i] = rec.Intern(m.d.Program.Chans[i].Name)
	}
	o.nextSampleAt = -1 // never matches a real cycle
	if cfg.SampleEvery > 0 {
		o.nextSampleAt = cfg.SampleEvery
	}
	o.nextCkptAt = -1
	if cfg.CheckpointEvery > 0 {
		o.ckptEvery = cfg.CheckpointEvery
		o.nextCkptAt = cfg.CheckpointEvery
	}
	m.obs = o
}

// Observed reports whether the machine records an observability timeline.
func (m *Machine) Observed() bool { return m.obs != nil }

// obsUnitIDs returns the unit's interned track and name IDs, interning on
// first use (autorun units never pass through obsLaunch, so laziness covers
// both populations). A unit name is never empty, so ID zero means "unset".
func (m *Machine) obsUnitIDs(u *Unit) (track, name obs.ID) {
	if u.obsTrack == 0 {
		n := u.xk.UnitName()
		u.obsName = m.obs.rec.Intern(n)
		u.obsTrack = m.obs.rec.Intern("unit:" + n)
	}
	return u.obsTrack, u.obsName
}

// obsLaunch records a launch instant and binds line-fetch observers to the
// launch's freshly created LSUs.
func (m *Machine) obsLaunch(u *Unit) {
	o := m.obs
	o.launched = append(o.launched, u)
	track, _ := m.obsUnitIDs(u)
	o.rec.InstantID(o.kLaunch, track, o.nLaunch, m.cycle, obs.NoDetail)
	for i, lsu := range u.lsus {
		if lsu == nil {
			continue
		}
		site := u.xk.LSUs[i]
		// Interned once per launch; repeat launches of the same kernel
		// resolve to the same IDs.
		ltrack := o.rec.Intern(fmt.Sprintf("lsu:%s/%s#%d", u.xk.UnitName(), site.Arr.Name, i))
		lname := o.rec.Intern(site.Kind.String())
		kind := o.kLineFetch
		rec := o.rec
		lsu.OnLineFetch = func(now, ready int64) {
			rec.SpanID(kind, ltrack, lname, now, ready)
		}
	}
}

// obsUnitFinished closes the unit's run span.
func (m *Machine) obsUnitFinished(u *Unit) {
	track, _ := m.obsUnitIDs(u)
	m.obs.rec.SpanID(m.obs.kUnitRun, track, m.obs.nRun, u.startedAt, u.finishedAt)
}

// obsChanBlocked notes a refused blocking channel op at cycle now. Adjacent
// refused cycles accumulate into one span; a gap flushes the old span and
// opens a new one — mirroring Unit.noteBlockedOp's interval semantics, but
// tracked per channel endpoint so multi-segment ping-ponging (which restarts
// the per-unit clock every cycle on the slow path) cannot desynchronize the
// two fast-forward modes.
func (m *Machine) obsChanBlocked(u *Unit, chID, dir int, now int64) {
	s := &m.obs.stalls[chID][dir]
	if s.open {
		if s.last >= now-1 {
			if now > s.last {
				s.last = now
			}
			return
		}
		m.obsFlushStall(chID, dir)
	}
	_, name := m.obsUnitIDs(u)
	*s = stallSpan{since: now, last: now, unit: name, open: true}
}

// obsExtendStall batch-extends the open stall span across a skipped window
// (from, to]; called from batchRegion next to the stall-counter batch charge.
// The span is open with last == from — the quiescent tick at `from` executed
// for real and its refused attempt opened or extended it — but the guards
// keep a missed assumption from corrupting the record.
func (m *Machine) obsExtendStall(u *Unit, chID, dir int, from, to int64) {
	s := &m.obs.stalls[chID][dir]
	if !s.open {
		_, name := m.obsUnitIDs(u)
		*s = stallSpan{since: from, unit: name, open: true}
	}
	if to > s.last {
		s.last = to
	}
}

// obsFlushStall emits the endpoint's open span, if any, as a timeline event.
// The opening unit travels in the detail annotation ("unit=<name>", packed as
// an interned ID) — the stall's attribution to a compute unit, which the
// analyze package turns into per-(unit, op, channel) rows.
func (m *Machine) obsFlushStall(chID, dir int) {
	s := &m.obs.stalls[chID][dir]
	if !s.open {
		return
	}
	m.obs.rec.SpanDetailID(m.obs.kChanStall, m.obs.chanTracks[chID], m.obs.dirNames[dir],
		s.since, s.last, obs.UnitDetail(s.unit))
	s.open = false
}

// obsEndTick runs at the end of every real tick: it takes a metrics sample
// when the cycle lands on the sampling grid. Grid cycles inside a skipped
// window are sampled mid-jump by fastForward, which splits its batch advance
// at each one, so both paths see identical state.
func (m *Machine) obsEndTick() {
	o := m.obs
	if m.cycle == o.nextSampleAt {
		m.obsTakeSample()
		o.nextSampleAt += o.sampleEvery
	}
	if m.cycle == o.nextCkptAt {
		m.obsCheckpoint()
		o.nextCkptAt += o.ckptEvery
	}
}

// obsSiteIDs returns the unit's per-site sample vocabulary, interning it on
// first use.
func (m *Machine) obsSiteIDs(u *Unit) []obsSiteID {
	if u.obsSites == nil {
		u.obsSites = make([]obsSiteID, len(u.xk.LSUs))
		for i, site := range u.xk.LSUs {
			u.obsSites[i] = obsSiteID{
				arr:     m.obs.rec.Intern(site.Arr.Name),
				kind:    m.obs.rec.Intern(site.Kind.String()),
				isStore: site.IsStore,
			}
		}
	}
	return u.obsSites
}

// obsTakeSample snapshots the accumulated counters straight into the
// recorder's flat sample stream: channels with any activity or occupancy,
// access sites with any traffic, and local memories (where the ibuffer trace
// storage lives) with any traffic. Nothing here materializes a string or an
// entry struct — every identifier is a pre-interned ID.
func (m *Machine) obsTakeSample() {
	o := m.obs
	sw := o.rec.BeginSample(m.cycle)
	for i, ch := range m.chans {
		st := ch.Stats()
		if st == (channel.Stats{}) && ch.Len() == 0 {
			continue
		}
		sw.Channel(o.chanNames[i], ch.Len(), st)
	}
	for _, u := range m.units {
		m.obsSampleUnit(sw, u)
	}
	for _, u := range o.launched {
		m.obsSampleUnit(sw, u)
	}
	sw.Commit()
}

func (m *Machine) obsSampleUnit(sw obs.SampleWriter, u *Unit) {
	o := m.obs
	for i := range u.xk.LSUs {
		lsu := u.lsus[i]
		if lsu == nil {
			continue
		}
		st := lsu.Stats()
		if st == (mem.LSUStats{}) {
			continue
		}
		_, name := m.obsUnitIDs(u)
		site := m.obsSiteIDs(u)[i]
		sw.LSU(name, site.arr, site.kind, site.isStore, st)
	}
	for _, lm := range u.locals {
		if lm.Reads == 0 && lm.Writes == 0 {
			continue
		}
		sw.Local(o.rec.Intern(lm.Name), lm.Reads, lm.Writes)
	}
}

// obsFaultEdge records an injected fault switching on or off. Fault
// boundaries are never jumped across (nextBoundary), so edges land at their
// exact cycles in both fast-forward modes. This is a rare path (a handful of
// edges per run), so it stays on the string-typed window API.
func (m *Machine) obsFaultEdge(idx int, re *resolvedEvent, now int64) {
	key := fmt.Sprintf("fault#%d", idx)
	ev := re.ev
	if re.active {
		var detail string
		if ev.Value != 0 {
			detail = fmt.Sprintf("value=%d", ev.Value)
		}
		m.obs.rec.OpenWindow(key, obs.Event{
			Kind: obs.KindFault, Track: "fault:" + ev.Target,
			Name: ev.Kind.String(), Start: now, Detail: detail,
		})
	} else {
		// the last cycle the fault was active is the one before this edge
		m.obs.rec.CloseWindow(key, now-1)
	}
}

// obsFinalize closes the record: open stall spans flush in channel order,
// still-running units get run spans ending now, a terminal metrics sample
// lands on the current cycle, and the recorder seals remaining fault
// windows. Idempotent; triggered by Timeline/Samples/Series.
func (m *Machine) obsFinalize() {
	o := m.obs
	if o.finalized {
		return
	}
	o.finalized = true
	for chID := range o.stalls {
		m.obsFlushStall(chID, 0)
		m.obsFlushStall(chID, 1)
	}
	for _, u := range m.units {
		if u.started {
			track, _ := m.obsUnitIDs(u)
			o.rec.SpanID(o.kUnitRun, track, o.nRun, u.startedAt, m.cycle)
		}
	}
	for _, u := range o.launched {
		if u.started && u.finishedAt == 0 {
			track, _ := m.obsUnitIDs(u)
			o.rec.SpanID(o.kUnitRun, track, o.nRun, u.startedAt, m.cycle)
		}
	}
	if o.sampleEvery > 0 && o.rec.LastSampleCycle() != m.cycle {
		m.obsTakeSample()
	}
	o.sinkErr = o.rec.Finalize(m.cycle)
}

// ObserveErr reports the downstream observability sink's Finalize error (nil
// before finalize, when observability is off, or when no sink failed). The
// in-memory record is unaffected by a failing sink — a full spill disk, say,
// never loses the buffered timeline.
func (m *Machine) ObserveErr() error {
	if m.obs == nil {
		return nil
	}
	return m.obs.sinkErr
}

// Observer finalizes the record and returns the underlying recorder, or nil
// when the machine was created without Options.Observe. This is the flat read
// path: consumers like the stall-attribution analysis walk the recorder's
// fixed-width records directly instead of materializing a Timeline first.
func (m *Machine) Observer() *obs.Recorder {
	if m.obs == nil {
		return nil
	}
	m.obsFinalize()
	return m.obs.rec
}

// Timeline finalizes and returns the run's event timeline, or nil when the
// machine was created without Options.Observe. Finalizing is terminal: call
// it after the run completes (stepping further records nothing new).
func (m *Machine) Timeline() *obs.Timeline {
	if m.obs == nil {
		return nil
	}
	m.obsFinalize()
	return m.obs.rec.Timeline()
}

// Samples finalizes and returns the run's metrics samples (nil when
// observability is off or sampling was not configured).
func (m *Machine) Samples() []obs.Sample {
	s := m.Series()
	if s == nil {
		return nil
	}
	return s.Samples
}

// Series finalizes and returns the run's metrics series, or nil when the
// machine was created without Options.Observe.
func (m *Machine) Series() *obs.Series {
	if m.obs == nil {
		return nil
	}
	m.obsFinalize()
	return m.obs.rec.Series()
}

// ReleaseObserver finalizes the record and returns the recorder's flat
// storage to the package pools for reuse by later runs (see
// obs.Recorder.Release). Call once all reads of this run's record are done;
// a no-op when the machine was created without Options.Observe.
func (m *Machine) ReleaseObserver() {
	if m.obs == nil {
		return
	}
	m.obsFinalize()
	m.obs.rec.Release()
}
