package sim

import (
	"fmt"

	"oclfpga/internal/channel"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
)

// Observability wiring. The machine carries an optional obsState; every hook
// on the hot path is guarded by a single `m.obs != nil` check so a machine
// without Options.Observe pays one predictable branch, and the recorder is
// event-driven rather than cycle-driven, so — unlike the VCD recorder's
// cycle hook — enabling it does not force the per-cycle slow path.
//
// Fast-forward exactness contract: events are only emitted at cycles the
// machine executes for real in both modes (launches, fault boundaries, unit
// finishes, deadline and sample cycles), and the one piece of open state —
// channel stall spans — is batch-extended across skipped windows at exactly
// the points batchRegion charges the equivalent stall counters. The
// equivalence suite asserts timelines and samples are byte-identical with
// skipping on and off; fast-forward jump events, which exist only when
// skipping is on, live on the separate Timeline.FFJumps track.

// obsState is the per-machine observability state.
type obsState struct {
	rec         *obs.Recorder
	sampleEvery int64
	// stalls tracks one open blocked-interval per channel endpoint,
	// indexed [chID][dir] with dir 0 = read, 1 = write.
	stalls [][2]stallSpan
	// launched remembers every launched unit so finalize and sampling can
	// visit them after they leave m.active.
	launched  []*Unit
	finalized bool
	// sinkErr is the downstream sink's Finalize error, surfaced through
	// Machine.ObserveErr.
	sinkErr error
}

// stallSpan is one in-progress consecutive blockage of a channel endpoint.
// unit names the compute unit whose refused attempt opened the span — the
// attribution key the analyze package groups by. Opening happens only on
// real ticks (the batch path merely extends), so the opener is identical
// with fast-forward on or off.
type stallSpan struct {
	since, last int64
	unit        string
	open        bool
}

var dirName = [2]string{"read-stall", "write-stall"}

// initObserve attaches a recorder; called from New before faults install so
// launch-skew instants land on the timeline.
func (m *Machine) initObserve(cfg *obs.Config) {
	m.obs = &obsState{
		rec:         obs.NewRecorder(m.d.Program.Name, *cfg),
		sampleEvery: cfg.SampleEvery,
		stalls:      make([][2]stallSpan, len(m.chans)),
	}
}

// Observed reports whether the machine records an observability timeline.
func (m *Machine) Observed() bool { return m.obs != nil }

func unitTrack(u *Unit) string { return "unit:" + u.xk.UnitName() }

// obsLaunch records a launch instant and binds line-fetch observers to the
// launch's freshly created LSUs.
func (m *Machine) obsLaunch(u *Unit) {
	o := m.obs
	o.launched = append(o.launched, u)
	o.rec.Instant(obs.KindLaunch, unitTrack(u), "launch", m.cycle, "")
	for i, lsu := range u.lsus {
		if lsu == nil {
			continue
		}
		site := u.xk.LSUs[i]
		track := fmt.Sprintf("lsu:%s/%s#%d", u.xk.UnitName(), site.Arr.Name, i)
		name := site.Kind.String()
		rec := o.rec
		lsu.OnLineFetch = func(now, ready int64) {
			rec.Span(obs.KindLineFetch, track, name, now, ready)
		}
	}
}

// obsUnitFinished closes the unit's run span.
func (m *Machine) obsUnitFinished(u *Unit) {
	m.obs.rec.Span(obs.KindUnitRun, unitTrack(u), "run", u.startedAt, u.finishedAt)
}

// obsChanBlocked notes a refused blocking channel op at cycle now. Adjacent
// refused cycles accumulate into one span; a gap flushes the old span and
// opens a new one — mirroring Unit.noteBlockedOp's interval semantics, but
// tracked per channel endpoint so multi-segment ping-ponging (which restarts
// the per-unit clock every cycle on the slow path) cannot desynchronize the
// two fast-forward modes.
func (m *Machine) obsChanBlocked(u *Unit, chID, dir int, now int64) {
	s := &m.obs.stalls[chID][dir]
	if s.open {
		if s.last >= now-1 {
			if now > s.last {
				s.last = now
			}
			return
		}
		m.obsFlushStall(chID, dir)
	}
	*s = stallSpan{since: now, last: now, unit: u.xk.UnitName(), open: true}
}

// obsExtendStall batch-extends the open stall span across a skipped window
// (from, to]; called from batchRegion next to the stall-counter batch charge.
// The span is open with last == from — the quiescent tick at `from` executed
// for real and its refused attempt opened or extended it — but the guards
// keep a missed assumption from corrupting the record.
func (m *Machine) obsExtendStall(u *Unit, chID, dir int, from, to int64) {
	s := &m.obs.stalls[chID][dir]
	if !s.open {
		*s = stallSpan{since: from, unit: u.xk.UnitName(), open: true}
	}
	if to > s.last {
		s.last = to
	}
}

// obsFlushStall emits the endpoint's open span, if any, as a timeline event.
// The opening unit travels in Detail — the stall's attribution to a compute
// unit, which the analyze package turns into per-(unit, op, channel) rows.
func (m *Machine) obsFlushStall(chID, dir int) {
	s := &m.obs.stalls[chID][dir]
	if !s.open {
		return
	}
	m.obs.rec.Add(obs.Event{
		Kind: obs.KindChanStall, Track: "chan:" + m.d.Program.Chans[chID].Name,
		Name: dirName[dir], Start: s.since, End: s.last, Detail: "unit=" + s.unit,
	})
	s.open = false
}

// obsEndTick runs at the end of every real tick: it takes a metrics sample
// when the cycle lands on the sampling grid. Sample cycles are fast-forward
// deadlines (see fastForward), so this sees identical state in both modes.
func (m *Machine) obsEndTick() {
	o := m.obs
	if o.sampleEvery > 0 && m.cycle%o.sampleEvery == 0 {
		o.rec.AddSample(m.obsSample())
	}
}

// obsSample snapshots the accumulated counters: channels with any activity or
// occupancy, access sites with any traffic, and local memories (where the
// ibuffer trace storage lives) with any traffic.
func (m *Machine) obsSample() obs.Sample {
	s := obs.Sample{Cycle: m.cycle}
	for i, ch := range m.chans {
		st := ch.Stats()
		if st == (channel.Stats{}) && ch.Len() == 0 {
			continue
		}
		s.Channels = append(s.Channels, obs.ChannelSample{
			Name: m.d.Program.Chans[i].Name, Len: ch.Len(), Stats: st,
		})
	}
	for _, u := range m.units {
		m.obsSampleUnit(&s, u)
	}
	for _, u := range m.obs.launched {
		m.obsSampleUnit(&s, u)
	}
	return s
}

func (m *Machine) obsSampleUnit(s *obs.Sample, u *Unit) {
	for i, site := range u.xk.LSUs {
		lsu := u.lsus[i]
		if lsu == nil {
			continue
		}
		st := lsu.Stats()
		if st == (mem.LSUStats{}) {
			continue
		}
		s.LSUs = append(s.LSUs, obs.LSUSample{
			Unit: u.xk.UnitName(), Array: site.Arr.Name,
			Kind: site.Kind.String(), IsStore: site.IsStore, LSUStats: st,
		})
	}
	for _, lm := range u.locals {
		if lm.Reads == 0 && lm.Writes == 0 {
			continue
		}
		s.Locals = append(s.Locals, obs.LocalSample{Name: lm.Name, Reads: lm.Reads, Writes: lm.Writes})
	}
}

// obsFaultEdge records an injected fault switching on or off. Fault
// boundaries are never jumped across (nextBoundary), so edges land at their
// exact cycles in both fast-forward modes.
func (m *Machine) obsFaultEdge(idx int, re *resolvedEvent, now int64) {
	key := fmt.Sprintf("fault#%d", idx)
	ev := re.ev
	if re.active {
		var detail string
		if ev.Value != 0 {
			detail = fmt.Sprintf("value=%d", ev.Value)
		}
		m.obs.rec.OpenWindow(key, obs.Event{
			Kind: obs.KindFault, Track: "fault:" + ev.Target,
			Name: ev.Kind.String(), Start: now, Detail: detail,
		})
	} else {
		// the last cycle the fault was active is the one before this edge
		m.obs.rec.CloseWindow(key, now-1)
	}
}

// obsFinalize closes the record: open stall spans flush in channel order,
// still-running units get run spans ending now, a terminal metrics sample
// lands on the current cycle, and the recorder seals remaining fault
// windows. Idempotent; triggered by Timeline/Samples/Series.
func (m *Machine) obsFinalize() {
	o := m.obs
	if o.finalized {
		return
	}
	o.finalized = true
	for chID := range o.stalls {
		m.obsFlushStall(chID, 0)
		m.obsFlushStall(chID, 1)
	}
	for _, u := range m.units {
		if u.started {
			o.rec.Span(obs.KindUnitRun, unitTrack(u), "run", u.startedAt, m.cycle)
		}
	}
	for _, u := range o.launched {
		if u.started && u.finishedAt == 0 {
			o.rec.Span(obs.KindUnitRun, unitTrack(u), "run", u.startedAt, m.cycle)
		}
	}
	if o.sampleEvery > 0 && o.rec.LastSampleCycle() != m.cycle {
		o.rec.AddSample(m.obsSample())
	}
	o.sinkErr = o.rec.Finalize(m.cycle)
}

// ObserveErr reports the downstream observability sink's Finalize error (nil
// before finalize, when observability is off, or when no sink failed). The
// in-memory record is unaffected by a failing sink — a full spill disk, say,
// never loses the buffered timeline.
func (m *Machine) ObserveErr() error {
	if m.obs == nil {
		return nil
	}
	return m.obs.sinkErr
}

// Timeline finalizes and returns the run's event timeline, or nil when the
// machine was created without Options.Observe. Finalizing is terminal: call
// it after the run completes (stepping further records nothing new).
func (m *Machine) Timeline() *obs.Timeline {
	if m.obs == nil {
		return nil
	}
	m.obsFinalize()
	return m.obs.rec.Timeline()
}

// Samples finalizes and returns the run's metrics samples (nil when
// observability is off or sampling was not configured).
func (m *Machine) Samples() []obs.Sample {
	s := m.Series()
	if s == nil {
		return nil
	}
	return s.Samples
}

// Series finalizes and returns the run's metrics series, or nil when the
// machine was created without Options.Observe.
func (m *Machine) Series() *obs.Series {
	if m.obs == nil {
		return nil
	}
	m.obsFinalize()
	return m.obs.rec.Series()
}
