package sim

import (
	"strings"
	"testing"

	"oclfpga/internal/device"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

func compile(t *testing.T, p *kir.Program, opts hls.Options) *hls.Design {
	t.Helper()
	d, err := hls.Compile(p, device.StratixV(), opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return d
}

func TestStraightLineStores(t *testing.T) {
	p := kir.NewProgram("straight")
	k := p.AddKernel("k", kir.SingleTask)
	g := k.AddGlobal("g", kir.I32)
	b := k.NewBuilder()
	v := b.Add(b.Ci32(40), b.Ci32(2))
	b.Store(g, b.Ci32(0), v)
	b.Store(g, b.Ci32(1), b.Mul(v, v))

	m := New(compile(t, p, hls.Options{}), Options{})
	buf := must(m.NewBuffer("g", kir.I32, 4))
	if _, err := m.Launch("k", Args{"g": buf}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.Data[0] != 42 || buf.Data[1] != 42*42 {
		t.Fatalf("results = %v", buf.Data[:2])
	}
}

func TestScalarArgs(t *testing.T) {
	p := kir.NewProgram("scalar")
	k := p.AddKernel("k", kir.SingleTask)
	n := k.AddScalar("n", kir.I32)
	g := k.AddGlobal("g", kir.I32)
	b := k.NewBuilder()
	b.Store(g, b.Ci32(0), b.Mul(n.Val, b.Ci32(3)))

	m := New(compile(t, p, hls.Options{}), Options{})
	buf := must(m.NewBuffer("g", kir.I32, 1))
	if _, err := m.Launch("k", Args{"g": buf, "n": 14}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.Data[0] != 42 {
		t.Fatalf("got %d", buf.Data[0])
	}
}

func TestDotProductLoop(t *testing.T) {
	p := kir.NewProgram("dot")
	k := p.AddKernel("dot", kir.SingleTask)
	x := k.AddGlobal("x", kir.I32)
	y := k.AddGlobal("y", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	sum := b.ForN("i", 100, []kir.Val{b.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		return []kir.Val{lb.Add(c[0], lb.Mul(lb.Load(x, i), lb.Load(y, i)))}
	})
	b.Store(z, b.Ci32(0), sum[0])

	m := New(compile(t, p, hls.Options{}), Options{})
	bx := must(m.NewBuffer("x", kir.I32, 100))
	by := must(m.NewBuffer("y", kir.I32, 100))
	bz := must(m.NewBuffer("z", kir.I32, 1))
	want := int64(0)
	for i := 0; i < 100; i++ {
		bx.Data[i] = int64(i)
		by.Data[i] = int64(2 * i)
		want += int64(i) * int64(2*i)
	}
	if _, err := m.Launch("dot", Args{"x": bx, "y": by, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if bz.Data[0] != want {
		t.Fatalf("dot = %d, want %d", bz.Data[0], want)
	}
}

func TestPipelineThroughput(t *testing.T) {
	// An II=1 loop over N iterations with coalesced loads should take
	// roughly N + depth + memory-warmup cycles, far below N*latency.
	p := kir.NewProgram("tp")
	k := p.AddKernel("k", kir.SingleTask)
	x := k.AddGlobal("x", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	const N = 2000
	sum := b.ForN("i", N, []kir.Val{b.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		return []kir.Val{lb.Add(c[0], lb.Load(x, i))}
	})
	b.Store(z, b.Ci32(0), sum[0])

	m := New(compile(t, p, hls.Options{}), Options{})
	bx := must(m.NewBuffer("x", kir.I32, N))
	bz := must(m.NewBuffer("z", kir.I32, 1))
	u, err := m.Launch("k", Args{"x": bx, "z": bz})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	cycles := u.FinishedAt()
	if cycles > 4*N {
		t.Fatalf("II=1 loop of %d iterations took %d cycles", N, cycles)
	}
	if cycles < N {
		t.Fatalf("impossible: %d iterations in %d cycles", N, cycles)
	}
}

func TestPointerChaseSerializes(t *testing.T) {
	p := kir.NewProgram("chase")
	k := p.AddKernel("k", kir.SingleTask)
	nxt := k.AddGlobal("next", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	const N = 200
	res := b.ForN("i", N, []kir.Val{b.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		return []kir.Val{lb.Load(nxt, c[0])}
	})
	b.Store(z, b.Ci32(0), res[0])

	m := New(compile(t, p, hls.Options{}), Options{})
	bn := must(m.NewBuffer("next", kir.I32, 4096))
	bz := must(m.NewBuffer("z", kir.I32, 1))
	// a permutation cycle: i -> (i*97+13) % 4096
	for i := 0; i < 4096; i++ {
		bn.Data[i] = int64((i*97 + 13) % 4096)
	}
	u, err := m.Launch("k", Args{"next": bn, "z": bz})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// verify the chase result functionally
	want := int64(0)
	for i := 0; i < N; i++ {
		want = bn.Data[want]
	}
	if bz.Data[0] != want {
		t.Fatalf("chase = %d, want %d", bz.Data[0], want)
	}
	// each iteration waits for the previous load: >= N * rowHit latency-ish
	if u.FinishedAt() < N*10 {
		t.Fatalf("pointer chase finished in %d cycles — not serialized", u.FinishedAt())
	}
}

func TestNDRangeVecAdd(t *testing.T) {
	p := kir.NewProgram("vecadd")
	k := p.AddKernel("vadd", kir.NDRange)
	x := k.AddGlobal("x", kir.I32)
	y := k.AddGlobal("y", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	gid := b.GlobalID(0)
	b.Store(z, gid, b.Add(b.Load(x, gid), b.Load(y, gid)))

	m := New(compile(t, p, hls.Options{}), Options{})
	const G = 256
	bx := must(m.NewBuffer("x", kir.I32, G))
	by := must(m.NewBuffer("y", kir.I32, G))
	bz := must(m.NewBuffer("z", kir.I32, G))
	for i := 0; i < G; i++ {
		bx.Data[i] = int64(i)
		by.Data[i] = int64(1000 - i)
	}
	if _, err := m.LaunchND("vadd", G, Args{"x": bx, "y": by, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < G; i++ {
		if bz.Data[i] != 1000 {
			t.Fatalf("z[%d] = %d, want 1000", i, bz.Data[i])
		}
	}
}

func TestNDRangeLoopCarried(t *testing.T) {
	// each work-item sums its own strided slice — exercises the multithread
	// loop engine with per-work-item carried chains
	p := kir.NewProgram("mt")
	k := p.AddKernel("k", kir.NDRange)
	x := k.AddGlobal("x", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	gid := b.GlobalID(0)
	base := b.Mul(gid, b.Ci32(8))
	sum := b.ForN("i", 8, []kir.Val{b.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		return []kir.Val{lb.Add(c[0], lb.Load(x, lb.Add(base, i)))}
	})
	b.Store(z, gid, sum[0])

	m := New(compile(t, p, hls.Options{}), Options{})
	const G = 16
	bx := must(m.NewBuffer("x", kir.I32, G*8))
	bz := must(m.NewBuffer("z", kir.I32, G))
	for i := range bx.Data {
		bx.Data[i] = int64(i)
	}
	if _, err := m.LaunchND("k", G, Args{"x": bx, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < G; w++ {
		want := int64(0)
		for i := 0; i < 8; i++ {
			want += int64(w*8 + i)
		}
		if bz.Data[w] != want {
			t.Fatalf("z[%d] = %d, want %d", w, bz.Data[w], want)
		}
	}
}

// timerProgram builds Listing 1 + Listing 2: autorun counter publishing to a
// depth-0 channel, kernel under test reading two timestamps.
func timerProgram() *kir.Program {
	p := kir.NewProgram("timer")
	t1 := p.AddChan("time_ch1", 0, kir.I64)
	t2 := p.AddChan("time_ch2", 0, kir.I64)
	srv := p.AddKernel("timer_srv", kir.Autorun)
	srv.Role = kir.RoleTimerServer
	sb := srv.NewBuilder()
	sb.Forever([]kir.Val{sb.Ci64(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		n := lb.Add(c[0], lb.Ci64(1))
		lb.ChanWriteNB(t1, n)
		lb.ChanWriteNB(t2, n)
		return []kir.Val{n}
	})
	k := p.AddKernel("dut", kir.SingleTask)
	x := k.AddGlobal("x", kir.I32)
	z := k.AddGlobal("z", kir.I64)
	b := k.NewBuilder()
	start := b.ChanRead(t1)
	sum := b.ForN("i", 100, []kir.Val{b.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		return []kir.Val{lb.Add(c[0], lb.Load(x, i))}
	})
	end := b.ChanRead(t2)
	b.Store(z, b.Ci32(0), b.Sub(end, start))
	b.Store(z, b.Ci32(1), sum[0])
	return p
}

func TestAutorunTimestamp(t *testing.T) {
	m := New(compile(t, timerProgram(), hls.Options{}), Options{})
	bx := must(m.NewBuffer("x", kir.I32, 100))
	bz := must(m.NewBuffer("z", kir.I64, 2))
	for i := range bx.Data {
		bx.Data[i] = 1
	}
	m.Step(50) // let the counter run ahead, as autorun kernels do
	if _, err := m.Launch("dut", Args{"x": bx, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	lat := bz.Data[0]
	if lat < 100 || lat > 500 {
		t.Fatalf("measured loop latency %d cycles, want ~100–500 (100 iterations + drain)", lat)
	}
	if bz.Data[1] != 100 {
		t.Fatalf("sum = %d", bz.Data[1])
	}
}

func TestSequenceServerConsecutive(t *testing.T) {
	// Listing 5: blocking writes of an incrementing counter; each consumer
	// pop sees consecutive values.
	p := kir.NewProgram("seq")
	sc := p.AddChan("seq_ch", 0, kir.I32)
	srv := p.AddKernel("seq_srv", kir.Autorun)
	srv.Role = kir.RoleSeqServer
	sb := srv.NewBuilder()
	sb.Forever([]kir.Val{sb.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		n := lb.Add(c[0], lb.Ci32(1))
		lb.ChanWrite(sc, n)
		return []kir.Val{n}
	})
	k := p.AddKernel("taker", kir.SingleTask)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	b.ForN("i", 20, nil, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		lb.Store(z, i, lb.ChanRead(sc))
		return nil
	})

	m := New(compile(t, p, hls.Options{}), Options{})
	bz := must(m.NewBuffer("z", kir.I32, 20))
	m.Step(100)
	if _, err := m.Launch("taker", Args{"z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if bz.Data[i] != int64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d (sequence must be consecutive from 1)", i, bz.Data[i], i+1)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	p := kir.NewProgram("dead")
	ch := p.AddChan("never", 2, kir.I32)
	k := p.AddKernel("k", kir.SingleTask)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	b.Store(z, b.Ci32(0), b.ChanRead(ch)) // no producer

	m := New(compile(t, p, hls.Options{}), Options{StallLimit: 500})
	bz := must(m.NewBuffer("z", kir.I32, 1))
	if _, err := m.Launch("k", Args{"z": bz}); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "never") {
		t.Fatalf("deadlock report should name the channel: %v", err)
	}
}

func TestLaunchErrors(t *testing.T) {
	m := New(compile(t, timerProgram(), hls.Options{}), Options{})
	if _, err := m.Launch("nosuch", Args{}); err == nil {
		t.Fatal("launching unknown kernel succeeded")
	}
	if _, err := m.Launch("timer_srv", Args{}); err == nil {
		t.Fatal("launching autorun kernel succeeded")
	}
	if _, err := m.Launch("dut", Args{}); err == nil {
		t.Fatal("launch without args succeeded")
	}
	bz := must(m.NewBuffer("z", kir.I64, 2))
	if _, err := m.Launch("dut", Args{"x": 5, "z": bz}); err == nil {
		t.Fatal("scalar for array arg accepted")
	}
	if _, err := m.LaunchND("dut", 8, Args{}); err == nil {
		t.Fatal("LaunchND of single-task kernel accepted")
	}
}

func TestPredicatedChannelOpsSkip(t *testing.T) {
	// A blocking write under a false guard must not block (Listing 10's
	// unrolled channel selection depends on this).
	p := kir.NewProgram("pred")
	chans := p.AddChanArray("c", 2, 2, kir.I32)
	k := p.AddKernel("k", kir.SingleTask)
	id := k.AddScalar("id", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	for i := 0; i < 2; i++ {
		eq := b.CmpEQ(b.Ci32(int64(i)), id.Val)
		b.If(eq, func(tb *kir.Builder) {
			tb.ChanWrite(chans[i], tb.Ci32(int64(100+i)))
		})
	}
	b.Store(z, b.Ci32(0), b.Ci32(1))
	// consumers so validation passes
	k2 := p.AddKernel("sink", kir.SingleTask)
	g2 := k2.AddGlobal("out", kir.I32)
	b2 := k2.NewBuilder()
	v0 := b2.ChanRead(chans[0])
	b2.Store(g2, b2.Ci32(0), v0)
	k3 := p.AddKernel("sink2", kir.SingleTask)
	g3 := k3.AddGlobal("out2", kir.I32)
	b3 := k3.NewBuilder()
	v1 := b3.ChanRead(chans[1])
	b3.Store(g3, b3.Ci32(0), v1)

	m := New(compile(t, p, hls.Options{}), Options{StallLimit: 2000})
	bz := must(m.NewBuffer("z", kir.I32, 1))
	bo := must(m.NewBuffer("out", kir.I32, 1))
	if _, err := m.Launch("k", Args{"z": bz, "id": 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("sink", Args{"out": bo}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if bo.Data[0] != 100 {
		t.Fatalf("sink got %d, want 100", bo.Data[0])
	}
	if bz.Data[0] != 1 {
		t.Fatal("writer did not complete")
	}
	if m.Channel("c[1]").Len() != 0 {
		t.Fatal("guarded-off channel received data")
	}
}

func TestStepWithoutLaunches(t *testing.T) {
	m := New(compile(t, timerProgram(), hls.Options{}), Options{})
	m.Step(100)
	if m.Cycle() != 100 {
		t.Fatalf("cycle = %d", m.Cycle())
	}
	// the autorun counter should have published something
	ch := m.Channel("time_ch1")
	if ch.Len() == 0 {
		t.Fatal("timer channel empty after 100 cycles")
	}
}

func TestBufferAccessors(t *testing.T) {
	m := New(compile(t, timerProgram(), hls.Options{}), Options{})
	b := must(m.NewBuffer("b", kir.I32, 8))
	if m.Buffer("b") != b {
		t.Fatal("Buffer lookup failed")
	}
	if m.Channel("nosuch") != nil {
		t.Fatal("Channel lookup of unknown name")
	}
	if _, err := m.NewBuffer("b", kir.I32, 8); err == nil {
		t.Fatal("duplicate buffer not rejected")
	}
	if _, err := m.NewBuffer("neg", kir.I32, -1); err == nil {
		t.Fatal("negative-length buffer not rejected")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// two machines over the same design and inputs must agree cycle-exactly
	run := func() (int64, []int64) {
		p := kir.NewProgram("det")
		k := p.AddKernel("k", kir.NDRange)
		x := k.AddGlobal("x", kir.I32)
		z := k.AddGlobal("z", kir.I32)
		b := k.NewBuilder()
		gid := b.GlobalID(0)
		sum := b.ForN("i", 6, []kir.Val{b.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
			return []kir.Val{lb.Add(c[0], lb.Load(x, lb.Add(lb.Mul(gid, lb.Ci32(6)), i)))}
		})
		b.Store(z, gid, sum[0])
		m := New(compile(t, p, hls.Options{}), Options{})
		bx := must(m.NewBuffer("x", kir.I32, 96))
		bz := must(m.NewBuffer("z", kir.I32, 16))
		for i := range bx.Data {
			bx.Data[i] = int64(i * 3 % 17)
		}
		u, err := m.LaunchND("k", 16, Args{"x": bx, "z": bz})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return u.FinishedAt(), append([]int64(nil), bz.Data...)
	}
	c1, z1 := run()
	c2, z2 := run()
	if c1 != c2 {
		t.Fatalf("nondeterministic timing: %d vs %d cycles", c1, c2)
	}
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("nondeterministic result at %d", i)
		}
	}
}

func TestNDRangeNestedLoops(t *testing.T) {
	// two loop levels inside an NDRange kernel: multithread engines nest
	p := kir.NewProgram("nest")
	k := p.AddKernel("k", kir.NDRange)
	x := k.AddGlobal("x", kir.I32)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	gid := b.GlobalID(0)
	total := b.ForN("i", 4, []kir.Val{b.Ci32(0)}, func(ib *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		inner := ib.ForN("j", 3, []kir.Val{c[0]}, func(jb *kir.Builder, j kir.Val, cc []kir.Val) []kir.Val {
			idx := jb.Add(jb.Mul(gid, jb.Ci32(12)), jb.Add(jb.Mul(i, jb.Ci32(3)), j))
			return []kir.Val{jb.Add(cc[0], jb.Load(x, idx))}
		})
		return []kir.Val{inner[0]}
	})
	b.Store(z, gid, total[0])

	m := New(compile(t, p, hls.Options{}), Options{})
	const G = 8
	bx := must(m.NewBuffer("x", kir.I32, G*12))
	bz := must(m.NewBuffer("z", kir.I32, G))
	for i := range bx.Data {
		bx.Data[i] = int64(i%7 + 1)
	}
	if _, err := m.LaunchND("k", G, Args{"x": bx, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < G; w++ {
		want := int64(0)
		for i := 0; i < 12; i++ {
			want += bx.Data[w*12+i]
		}
		if bz.Data[w] != want {
			t.Fatalf("z[%d] = %d, want %d", w, bz.Data[w], want)
		}
	}
}

func TestSequentialLaunchesShareState(t *testing.T) {
	// two launches of the same kernel against the same machine: the second
	// sees the first's memory writes (persistent board state)
	p := kir.NewProgram("twice")
	k := p.AddKernel("inc", kir.SingleTask)
	g := k.AddGlobal("g", kir.I32)
	b := k.NewBuilder()
	b.Store(g, b.Ci32(0), b.Add(b.Load(g, b.Ci32(0)), b.Ci32(1)))

	m := New(compile(t, p, hls.Options{}), Options{})
	bg := must(m.NewBuffer("g", kir.I32, 1))
	for i := 0; i < 3; i++ {
		if _, err := m.Launch("inc", Args{"g": bg}); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if bg.Data[0] != 3 {
		t.Fatalf("g = %d after three launches, want 3", bg.Data[0])
	}
}

func TestDumpStateRenders(t *testing.T) {
	m := New(compile(t, timerProgram(), hls.Options{}), Options{})
	m.Step(5)
	out := m.DumpState()
	if !strings.Contains(out, "cycle 5") || !strings.Contains(out, "timer_srv") {
		t.Fatalf("DumpState:\n%s", out)
	}
}

func TestNDRangeWide(t *testing.T) {
	// a large work-item count streams through the top pipeline with entry
	// backpressure; everything must land exactly once
	p := kir.NewProgram("wide")
	k := p.AddKernel("k", kir.NDRange)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	gid := b.GlobalID(0)
	b.Store(z, gid, b.Add(b.Mul(gid, b.Ci32(2)), b.Ci32(1)))

	m := New(compile(t, p, hls.Options{}), Options{})
	const G = 1500
	bz := must(m.NewBuffer("z", kir.I32, G))
	u, err := m.LaunchND("k", G, Args{"z": bz})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < G; i++ {
		if bz.Data[i] != int64(2*i+1) {
			t.Fatalf("z[%d] = %d", i, bz.Data[i])
		}
	}
	// throughput sanity: ~1 work-item per cycle plus memory effects
	if u.FinishedAt() > 6*G {
		t.Fatalf("%d work-items took %d cycles", G, u.FinishedAt())
	}
}
