package sim

import (
	"bytes"
	"testing"

	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
	"oclfpga/internal/obs"
)

// prodConsDesign builds the small producer/consumer pair used by the
// observability and VCD tests: a fast producer feeding a slow consumer
// through a shallow channel, so the run has launches, run spans, and
// write-stall intervals.
func prodConsDesign(t *testing.T, n int64) *hls.Design {
	t.Helper()
	p := kir.NewProgram("obswork")
	pipe := p.AddChan("pipe", 2, kir.I32)

	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", n, nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(pipe, lb.Load(src, i))
		return nil
	})

	cons := p.AddKernel("consumer", kir.SingleTask)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", n, nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		v := lb.ChanRead(pipe)
		// a carried divide chain throttles the consumer below the producer
		slow := lb.ForN("j", 3, []kir.Val{v}, func(jb *kir.Builder, j kir.Val, c []kir.Val) []kir.Val {
			return []kir.Val{jb.Div(jb.Add(c[0], jb.Ci32(3)), jb.Ci32(1))}
		})
		lb.Store(dst, i, slow[0])
		return nil
	})
	return compile(t, p, hls.Options{})
}

func runProdCons(t *testing.T, m *Machine, n int64) {
	t.Helper()
	bs := must(m.NewBuffer("src", kir.I32, int(n)))
	bd := must(m.NewBuffer("dst", kir.I32, int(n)))
	for i := range bs.Data {
		bs.Data[i] = int64(i + 1)
	}
	if _, err := m.Launch("producer", Args{"src": bs}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("consumer", Args{"dst": bd}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestObserveTimelineFromWorkload(t *testing.T) {
	const n = 64
	d := prodConsDesign(t, n)
	m := New(d, Options{Observe: &obs.Config{SampleEvery: 50}})
	runProdCons(t, m, n)

	tl := m.Timeline()
	if tl == nil {
		t.Fatal("Timeline() = nil with observability on")
	}
	if tl.Design != "obswork" || tl.EndCycle != m.Cycle() {
		t.Fatalf("timeline header = %q end=%d (machine at %d)", tl.Design, tl.EndCycle, m.Cycle())
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var stallCycles int64
	for _, e := range tl.Events {
		counts[e.Kind]++
		if e.Kind == obs.KindChanStall && e.Name == "write-stall" {
			stallCycles += e.End - e.Start + 1
		}
	}
	if counts[obs.KindLaunch] != 2 || counts[obs.KindUnitRun] != 2 {
		t.Fatalf("launch/run events = %v", counts)
	}
	if counts[obs.KindChanStall] == 0 {
		t.Fatalf("no stall spans recorded: %v", counts)
	}
	// the timeline's stall-cycle total must agree with the counter the
	// channel itself accumulated — the spans are exact, not approximate
	st := m.Channel("pipe").Stats()
	if stallCycles != st.WriteStalls {
		t.Fatalf("timeline write-stall cycles = %d, counter = %d", stallCycles, st.WriteStalls)
	}

	series := m.Series()
	if series == nil || series.SampleEvery != 50 {
		t.Fatalf("series = %+v", series)
	}
	if err := series.Validate(); err != nil {
		t.Fatal(err)
	}
	last := series.Samples[len(series.Samples)-1]
	if last.Cycle != m.Cycle() {
		t.Fatalf("terminal sample at %d, machine at %d", last.Cycle, m.Cycle())
	}
	var found bool
	for _, c := range last.Channels {
		if c.Name == "pipe" {
			found = true
			if c.WriteStalls != st.WriteStalls || c.Writes != st.Writes {
				t.Fatalf("terminal sample %+v vs counters %+v", c, st)
			}
		}
	}
	if !found {
		t.Fatalf("pipe missing from terminal sample: %+v", last)
	}

	// Timeline()/Series() finalize and are idempotent
	tl2 := m.Timeline()
	if len(tl2.Events) != len(tl.Events) || tl2.EndCycle != tl.EndCycle {
		t.Fatal("second Timeline() differs")
	}
}

func TestObserveDisabledIsNil(t *testing.T) {
	const n = 16
	d := prodConsDesign(t, n)
	m := New(d, Options{})
	runProdCons(t, m, n)
	if m.Observed() {
		t.Fatal("Observed() true without config")
	}
	if m.Timeline() != nil || m.Series() != nil || m.Samples() != nil {
		t.Fatal("observability accessors non-nil when disabled")
	}
}

func TestObserveTimelineSerializesRoundTrip(t *testing.T) {
	const n = 32
	d := prodConsDesign(t, n)
	m := New(d, Options{Observe: &obs.Config{SampleEvery: 64}})
	runProdCons(t, m, n)

	var b bytes.Buffer
	if err := obs.WriteTimeline(&b, m.Timeline()); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadTimeline(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := obs.WriteTimeline(&b2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("workload timeline not byte-stable through the codec")
	}
}
