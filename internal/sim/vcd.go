package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// VCDRecorder samples channel occupancy and unit activity every cycle and
// renders a Value Change Dump — the signal-level view a SignalTap/ChipScope
// logic analyzer would give (the related work the paper positions against,
// §6). Comparing this waveform against an ibuffer trace of the same run
// shows the difference between recording raw signals and the framework's
// processed, software-visible events.
type VCDRecorder struct {
	m       *Machine
	signals []*vcdSignal
	changes []vcdChange
	started bool
}

type vcdSignal struct {
	name   string
	id     string
	width  int
	sample func() int64
	last   int64
}

type vcdChange struct {
	cycle int64
	sig   int
	value int64
}

// NewVCD attaches a recorder to the machine. Channel names select channels
// to trace (occupancy as a vector, data-available as a bit); pass no names
// to trace every channel. Sampling starts immediately and costs one callback
// per cycle. Attaching a recorder registers a cycle hook, which forces the
// machine onto the per-cycle slow path (DESIGN.md §8): a waveform must
// contain every cycle, so quiescent windows cannot be skipped while one is
// attached.
func (m *Machine) NewVCD(channelNames ...string) *VCDRecorder {
	r := &VCDRecorder{m: m}
	want := map[string]bool{}
	for _, n := range channelNames {
		want[n] = true
	}
	for i, ch := range m.chans {
		name := m.d.Program.Chans[i].Name
		if len(want) > 0 && !want[name] {
			continue
		}
		ch := ch
		r.addSignal(sanitize(name)+"_occ", 8, func() int64 { return int64(ch.Len()) })
		r.addSignal(sanitize(name)+"_valid", 1, func() int64 {
			if ch.Len() > 0 {
				return 1
			}
			return 0
		})
	}
	for _, u := range m.units {
		u := u
		r.addSignal(sanitize(u.xk.UnitName())+"_running", 1, func() int64 {
			if u.started && !u.Done() {
				return 1
			}
			return 0
		})
	}
	m.cycleHooks = append(m.cycleHooks, r.sample)
	return r
}

func (r *VCDRecorder) addSignal(name string, width int, sample func() int64) {
	id := vcdID(len(r.signals))
	r.signals = append(r.signals, &vcdSignal{
		name: name, id: id, width: width, sample: sample, last: -1,
	})
}

// sample records changed values for the current cycle.
func (r *VCDRecorder) sample(cycle int64) {
	for i, s := range r.signals {
		v := s.sample()
		if !r.started || v != s.last {
			r.changes = append(r.changes, vcdChange{cycle: cycle, sig: i, value: v})
			s.last = v
		}
	}
	r.started = true
}

// vcdID maps an index to a compact printable identifier.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	id := ""
	for {
		id = string(alphabet[i%len(alphabet)]) + id
		i /= len(alphabet)
		if i == 0 {
			return id
		}
		i--
	}
}

func sanitize(name string) string {
	repl := strings.NewReplacer("[", "_", "]", "", " ", "_", ".", "_")
	return repl.Replace(name)
}

// Flush writes the accumulated dump in VCD format.
func (r *VCDRecorder) Flush(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("$date oclfpga simulation $end\n")
	sb.WriteString("$version oclfpga VCD recorder $end\n")
	sb.WriteString("$timescale 1ns $end\n")
	sb.WriteString("$scope module board $end\n")
	for _, s := range r.signals {
		kind := "wire"
		fmt.Fprintf(&sb, "$var %s %d %s %s $end\n", kind, s.width, s.id, s.name)
	}
	sb.WriteString("$upscope $end\n$enddefinitions $end\n")

	// group changes by cycle (already in order, but be safe)
	sort.SliceStable(r.changes, func(i, j int) bool { return r.changes[i].cycle < r.changes[j].cycle })
	lastCycle := int64(-1)
	for _, c := range r.changes {
		if c.cycle != lastCycle {
			fmt.Fprintf(&sb, "#%d\n", c.cycle)
			lastCycle = c.cycle
		}
		s := r.signals[c.sig]
		if s.width == 1 {
			fmt.Fprintf(&sb, "%d%s\n", c.value&1, s.id)
		} else {
			fmt.Fprintf(&sb, "b%b %s\n", c.value, s.id)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Changes reports how many value changes were captured.
func (r *VCDRecorder) Changes() int { return len(r.changes) }
