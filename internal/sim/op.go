package sim

import (
	"fmt"

	"oclfpga/internal/channel"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

// truncBits wraps v to the op's datapath width, mirroring kir.Type widths
// (32/64 signed, 16/8 unsigned, 1 boolean).
func truncBits(v int64, bits int) int64 {
	switch bits {
	case 64, 0:
		return v
	case 32:
		return int64(int32(v))
	case 16:
		return int64(uint16(v))
	case 8:
		return int64(uint8(v))
	case 1:
		if v != 0 {
			return 1
		}
		return 0
	}
	return v
}

// Intrinsic is the interface an OpIBufLogic payload implements to execute
// inside the pipeline (the HDL-library escape hatch; the reference ibuffer
// is plain IR and does not need it). Exec returns false to stall.
type Intrinsic interface {
	Exec(env *IntrinsicEnv) bool
}

// IntrinsicEnv is the machine access an intrinsic gets.
type IntrinsicEnv struct {
	M     *Machine
	U     *Unit
	C     *Ctx
	Op    *hls.XOp
	Now   int64
	State *any // per-(unit, op) persistent state cell
}

// Chan gives the intrinsic direct access to a channel endpoint by program
// channel id — the HDL block's ports.
func (e *IntrinsicEnv) Chan(id int) *channel.Channel { return e.M.chans[id] }

// execOp executes one op for one context at the current cycle. It returns
// false when the op cannot proceed (operand pending, blocking channel not
// ready), which stalls the whole segment pipeline.
func (u *Unit) execOp(c *Ctx, op *hls.XOp, now int64, se *segExec) bool {
	// predication (if-conversion): guard must be resolved; a false guard
	// skips the op entirely — this is how a predicated blocking channel op
	// avoids blocking, as the host-interface kernel relies on.
	if op.Guard >= 0 {
		if c.readyAt(op.Guard) > now {
			return false
		}
		if c.val(op.Guard) == 0 {
			return true
		}
	}
	// operands must be available (static schedule guarantees this except
	// for runtime-variable producers: memory and channels)
	for _, a := range op.Args {
		if a >= 0 && c.readyAt(a) > now {
			return false
		}
	}

	done := now + int64(op.Lat)
	arg := func(i int) int64 { return c.val(op.Args[i]) }
	set := func(v int64) { c.write(op.Dst, truncBits(v, op.Bits), done) }

	switch op.Kind {
	case kir.OpConst:
		set(op.Const)
	case kir.OpAdd:
		set(arg(0) + arg(1))
	case kir.OpSub:
		set(arg(0) - arg(1))
	case kir.OpMul:
		set(arg(0) * arg(1))
	case kir.OpDiv:
		if arg(1) == 0 {
			set(0)
		} else {
			set(arg(0) / arg(1))
		}
	case kir.OpMod:
		if arg(1) == 0 {
			set(0)
		} else {
			set(arg(0) % arg(1))
		}
	case kir.OpAnd:
		set(arg(0) & arg(1))
	case kir.OpOr:
		set(arg(0) | arg(1))
	case kir.OpXor:
		set(arg(0) ^ arg(1))
	case kir.OpShl:
		set(arg(0) << uint64(arg(1)&63))
	case kir.OpShr:
		set(arg(0) >> uint64(arg(1)&63))
	case kir.OpCmpLT:
		set(b2i(arg(0) < arg(1)))
	case kir.OpCmpLE:
		set(b2i(arg(0) <= arg(1)))
	case kir.OpCmpEQ:
		set(b2i(arg(0) == arg(1)))
	case kir.OpCmpNE:
		set(b2i(arg(0) != arg(1)))
	case kir.OpCmpGT:
		set(b2i(arg(0) > arg(1)))
	case kir.OpCmpGE:
		set(b2i(arg(0) >= arg(1)))
	case kir.OpSelect:
		if arg(0) != 0 {
			set(arg(1))
		} else {
			set(arg(2))
		}

	case kir.OpLoad:
		lsu := u.lsus[op.LSU]
		if lsu == nil {
			return u.fail("load through unbound LSU (%s)", op)
		}
		v, ready := lsu.Load(now, arg(0))
		c.write(op.Dst, truncBits(v, op.Bits), ready)
	case kir.OpStore:
		lsu := u.lsus[op.LSU]
		if lsu == nil {
			return u.fail("store through unbound LSU (%s)", op)
		}
		ack := lsu.Store(now, arg(0), arg(1))
		if ack > now+1 {
			se.stallUntil = maxi64(se.stallUntil, ack-1)
		}
	case kir.OpLocalLoad:
		lm := u.locals[op.Local]
		v, ready := lm.Load(now, arg(0))
		c.write(op.Dst, truncBits(v, op.Bits), ready)
	case kir.OpLocalStore:
		lm := u.locals[op.Local]
		lm.Store(now, arg(0), arg(1))

	case kir.OpChanRead:
		ch := u.m.chans[op.ChID]
		v, ok := ch.TryRead()
		if !ok {
			return false
		}
		c.write(op.Dst, truncBits(v, op.Bits), done)
	case kir.OpChanWrite:
		ch := u.m.chans[op.ChID]
		if !ch.TryWrite(arg(0)) {
			return false
		}
	case kir.OpChanReadNB:
		ch := u.m.chans[op.ChID]
		v, ok := ch.TryRead()
		c.write(op.Dst, truncBits(v, op.Bits), done)
		c.write(op.OkDst, b2i(ok), done)
	case kir.OpChanWriteNB:
		ch := u.m.chans[op.ChID]
		ok := ch.WriteNB(arg(0))
		c.write(op.OkDst, b2i(ok), done)

	case kir.OpGlobalID:
		c.write(op.Dst, c.wiID, now)
	case kir.OpCall:
		args := make([]int64, len(op.Args))
		for i := range op.Args {
			args[i] = arg(i)
		}
		var v int64
		if op.Lib.Synth != nil {
			v = op.Lib.Synth(now, args)
		}
		c.write(op.Dst, v, done)
	case kir.OpFence:
		// ordering is enforced by the schedule's channel chain
	case kir.OpIBufLogic:
		in, ok := op.IBuf.(Intrinsic)
		if !ok {
			return u.fail("OpIBufLogic payload does not implement sim.Intrinsic")
		}
		cell := u.intrinsicState[op]
		env := &IntrinsicEnv{M: u.m, U: u, C: c, Op: op, Now: now, State: &cell}
		ok = in.Exec(env)
		u.intrinsicState[op] = cell
		if !ok {
			return false
		}
	default:
		return u.fail("unimplemented op %s", op.Kind)
	}
	return true
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (u *Unit) fail(format string, args ...any) bool {
	if u.m.err == nil {
		u.m.err = fmt.Errorf("sim: unit %s: %s", u.xk.UnitName(), fmt.Sprintf(format, args...))
	}
	return false
}
