package sim

import (
	"fmt"

	"oclfpga/internal/channel"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

// truncBits wraps v to the op's datapath width, mirroring kir.Type widths
// (32/64 signed, 16/8 unsigned, 1 boolean).
func truncBits(v int64, bits int) int64 {
	switch bits {
	case 64, 0:
		return v
	case 32:
		return int64(int32(v))
	case 16:
		return int64(uint16(v))
	case 8:
		return int64(uint8(v))
	case 1:
		if v != 0 {
			return 1
		}
		return 0
	}
	return v
}

// Intrinsic is the interface an OpIBufLogic payload implements to execute
// inside the pipeline (the HDL-library escape hatch; the reference ibuffer
// is plain IR and does not need it). Exec returns false to stall.
type Intrinsic interface {
	Exec(env *IntrinsicEnv) bool
}

// IntrinsicEnv is the machine access an intrinsic gets.
type IntrinsicEnv struct {
	M     *Machine
	U     *Unit
	C     *Ctx
	Op    *hls.XOp
	Now   int64
	State *any // per-(unit, op) persistent state cell
}

// Chan gives the intrinsic direct access to a channel endpoint by program
// channel id — the HDL block's ports.
func (e *IntrinsicEnv) Chan(id int) *channel.Channel { return e.M.chans[id] }

// execOp executes one op for one context at the current cycle. It returns
// false when the op cannot proceed (operand pending, blocking channel not
// ready), which stalls the whole segment pipeline.
func (u *Unit) execOp(c *Ctx, op *hls.XOp, now int64, se *segExec) bool {
	// predication (if-conversion): guard must be resolved; a false guard
	// skips the op entirely — this is how a predicated blocking channel op
	// avoids blocking, as the host-interface kernel relies on.
	if op.Guard >= 0 {
		if c.readyAt(op.Guard) > now {
			return false
		}
		if c.val(op.Guard) == 0 {
			return true
		}
	}
	// operands must be available (static schedule guarantees this except
	// for runtime-variable producers: memory and channels)
	for _, a := range op.Args {
		if a >= 0 && c.readyAt(a) > now {
			return false
		}
	}

	done := now + int64(op.Lat)

	// ALU ops funnel through one write at the bottom; the hot path avoids
	// closure allocation by indexing operands directly.
	switch op.Kind {
	case kir.OpConst:
		c.write(op.Dst, truncBits(op.Const, op.Bits), done)
	case kir.OpAdd:
		c.write(op.Dst, truncBits(c.val(op.Args[0])+c.val(op.Args[1]), op.Bits), done)
	case kir.OpSub:
		c.write(op.Dst, truncBits(c.val(op.Args[0])-c.val(op.Args[1]), op.Bits), done)
	case kir.OpMul:
		c.write(op.Dst, truncBits(c.val(op.Args[0])*c.val(op.Args[1]), op.Bits), done)
	case kir.OpDiv:
		var v int64
		if d := c.val(op.Args[1]); d != 0 {
			v = c.val(op.Args[0]) / d
		}
		c.write(op.Dst, truncBits(v, op.Bits), done)
	case kir.OpMod:
		var v int64
		if d := c.val(op.Args[1]); d != 0 {
			v = c.val(op.Args[0]) % d
		}
		c.write(op.Dst, truncBits(v, op.Bits), done)
	case kir.OpAnd:
		c.write(op.Dst, truncBits(c.val(op.Args[0])&c.val(op.Args[1]), op.Bits), done)
	case kir.OpOr:
		c.write(op.Dst, truncBits(c.val(op.Args[0])|c.val(op.Args[1]), op.Bits), done)
	case kir.OpXor:
		c.write(op.Dst, truncBits(c.val(op.Args[0])^c.val(op.Args[1]), op.Bits), done)
	case kir.OpShl:
		c.write(op.Dst, truncBits(c.val(op.Args[0])<<uint64(c.val(op.Args[1])&63), op.Bits), done)
	case kir.OpShr:
		c.write(op.Dst, truncBits(c.val(op.Args[0])>>uint64(c.val(op.Args[1])&63), op.Bits), done)
	case kir.OpCmpLT:
		c.write(op.Dst, b2i(c.val(op.Args[0]) < c.val(op.Args[1])), done)
	case kir.OpCmpLE:
		c.write(op.Dst, b2i(c.val(op.Args[0]) <= c.val(op.Args[1])), done)
	case kir.OpCmpEQ:
		c.write(op.Dst, b2i(c.val(op.Args[0]) == c.val(op.Args[1])), done)
	case kir.OpCmpNE:
		c.write(op.Dst, b2i(c.val(op.Args[0]) != c.val(op.Args[1])), done)
	case kir.OpCmpGT:
		c.write(op.Dst, b2i(c.val(op.Args[0]) > c.val(op.Args[1])), done)
	case kir.OpCmpGE:
		c.write(op.Dst, b2i(c.val(op.Args[0]) >= c.val(op.Args[1])), done)
	case kir.OpSelect:
		v := c.val(op.Args[2])
		if c.val(op.Args[0]) != 0 {
			v = c.val(op.Args[1])
		}
		c.write(op.Dst, truncBits(v, op.Bits), done)

	case kir.OpLoad:
		lsu := u.lsus[op.LSU]
		if lsu == nil {
			return u.fail("load through unbound LSU (%s)", op)
		}
		v, ready := lsu.Load(now, c.val(op.Args[0]))
		c.write(op.Dst, truncBits(v, op.Bits), ready)
	case kir.OpStore:
		lsu := u.lsus[op.LSU]
		if lsu == nil {
			return u.fail("store through unbound LSU (%s)", op)
		}
		ack := lsu.Store(now, c.val(op.Args[0]), c.val(op.Args[1]))
		if ack > now+1 {
			se.stallUntil = maxi64(se.stallUntil, ack-1)
		}
	case kir.OpLocalLoad:
		lm := u.locals[op.Local]
		v, ready := lm.Load(now, c.val(op.Args[0]))
		c.write(op.Dst, truncBits(v, op.Bits), ready)
	case kir.OpLocalStore:
		lm := u.locals[op.Local]
		lm.Store(now, c.val(op.Args[0]), c.val(op.Args[1]))

	case kir.OpChanRead:
		ch := u.m.chans[op.ChID]
		v, ok := ch.TryRead()
		if !ok {
			if u.m.obs != nil {
				u.m.obsChanBlocked(u, op.ChID, 0, now)
			}
			return false
		}
		c.write(op.Dst, truncBits(v, op.Bits), done)
	case kir.OpChanWrite:
		ch := u.m.chans[op.ChID]
		if !ch.TryWrite(c.val(op.Args[0])) {
			if u.m.obs != nil {
				u.m.obsChanBlocked(u, op.ChID, 1, now)
			}
			return false
		}
	case kir.OpChanReadNB:
		ch := u.m.chans[op.ChID]
		v, ok := ch.TryRead()
		c.write(op.Dst, truncBits(v, op.Bits), done)
		c.write(op.OkDst, b2i(ok), done)
	case kir.OpChanWriteNB:
		ch := u.m.chans[op.ChID]
		ok := ch.WriteNB(c.val(op.Args[0]))
		c.write(op.OkDst, b2i(ok), done)

	case kir.OpGlobalID:
		c.write(op.Dst, c.wiID, now)
	case kir.OpCall:
		args := make([]int64, len(op.Args))
		for i, a := range op.Args {
			args[i] = c.val(a)
		}
		var v int64
		if op.Lib.Synth != nil {
			v = op.Lib.Synth(now, args)
		}
		c.write(op.Dst, v, done)
	case kir.OpFence:
		// ordering is enforced by the schedule's channel chain
	case kir.OpIBufLogic:
		in, ok := op.IBuf.(Intrinsic)
		if !ok {
			return u.fail("OpIBufLogic payload does not implement sim.Intrinsic")
		}
		if op.StateIdx < 0 || op.StateIdx >= len(u.intrinsicState) {
			return u.fail("OpIBufLogic without a lowered StateIdx (%s)", op)
		}
		// the env is reused across calls (intrinsics must not retain it);
		// state lives in a dense per-unit slice indexed by the op's StateIdx
		env := &u.ienv
		env.M, env.U, env.C, env.Op, env.Now = u.m, u, c, op, now
		env.State = &u.intrinsicState[op.StateIdx]
		ok = in.Exec(env)
		env.C, env.Op, env.State = nil, nil, nil
		if !ok {
			return false
		}
	default:
		return u.fail("unimplemented op %s", op.Kind)
	}
	return true
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (u *Unit) fail(format string, args ...any) bool {
	if u.m.err == nil {
		u.m.err = fmt.Errorf("sim: unit %s: %s", u.xk.UnitName(), fmt.Sprintf(format, args...))
	}
	return false
}
