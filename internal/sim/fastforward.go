package sim

import (
	"sync/atomic"

	"oclfpga/internal/channel"
	"oclfpga/internal/fault"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

// Fast-forward: event-driven skipping of quiescent cycles.
//
// A tick that ends with m.workDone == false made no state change beyond three
// batch-replayable effects: empty segments incrementing their shift counters,
// blocked channel ops incrementing the channel's stall statistics, and
// blocked-op bookkeeping refreshing blockState.last. While the machine stays
// in that state, every future tick is byte-for-byte predictable, so Run can
// jump the clock to the earliest cycle anything could change — a memory
// response maturing, a stall window expiring, II pacing being satisfied, a
// delayed launch starting, or a fault event switching on or off — and replay
// the skipped cycles' counter effects in O(blocked ops) instead of
// O(cycles × fabric).
//
// The wake computation is deliberately conservative in one direction only:
// it may UNDER-estimate the next wake (costing an extra real tick), never
// over-estimate it (which would change observable behaviour). Channel-blocked
// ops report "no timed wake" — only a counterpart's commit can unblock them,
// and a counterpart that could commit would have made the tick non-quiescent.
// Opaque blockages (intrinsic logic) report now+1, disabling skipping.

// wakeInf means "no timed wake-up: only another unit's progress (or a fault
// boundary, accounted separately) can change this item's state".
const wakeInf = int64(1<<62 - 1)

// ffDisabled force-disables fast-forward process-wide; the equivalence tests
// use it to drive the slow path through public entry points.
var ffDisabled atomic.Bool

// SetFastForwardDisabled force-disables (or re-enables) quiescent-cycle
// skipping for every machine in the process. Intended for tests and A/B
// debugging; fast-forward is semantics-preserving, so normal users never
// need it.
func SetFastForwardDisabled(v bool) { ffDisabled.Store(v) }

// FastForwardStats summarizes the machine's quiescent-cycle skipping: how
// many jumps it has taken and how many cycles they skipped. Skipped cycles
// still "happened" — counters, stall statistics, and the cycle clock all
// read as if each one was stepped. The JSON tags make the struct one of the
// machine-readable report payloads (DESIGN.md §9).
type FastForwardStats struct {
	Jumps   int64 `json:"jumps"`
	Skipped int64 `json:"skipped"`
}

// FastForwardStats reports the accumulated jump statistics.
func (m *Machine) FastForwardStats() FastForwardStats {
	return FastForwardStats{Jumps: m.ffJumps, Skipped: m.ffSkipped}
}

// fastForwardOK reports whether skipping is currently allowed: it is off
// when the options or the process-wide switch disable it, and whenever cycle
// hooks (the VCD recorder) are attached — hooks observe every cycle by
// contract, so their presence forces per-cycle stepping.
func (m *Machine) fastForwardOK() bool {
	return !m.opts.DisableFastForward && len(m.cycleHooks) == 0 && !ffDisabled.Load()
}

// fastForward is called after a quiescent tick at m.cycle. It computes the
// next wake and jumps to just before it, batch-replaying the skipped cycles'
// effects. Deadline cycles (stall limit, max cycles, run budget) cap the
// jump so the tick that trips a limit executes for real and the resulting
// report carries exactly the state the slow path would have produced.
func (m *Machine) fastForward(start, budget int64) {
	w := m.nextWake()
	to := w - 1
	if lim := m.lastProgress + m.opts.StallLimit; to > lim {
		to = lim
	}
	if to > m.opts.MaxCycles {
		to = m.opts.MaxCycles
	}
	if budget >= 0 && to > start+budget {
		to = start + budget
	}
	if m.capIdx < len(m.captures) && to >= m.captures[m.capIdx] {
		// capture cycles are deadlines too: the jump lands exactly on the
		// next one and run()/Step() fires the callback there
		to = m.captures[m.capIdx]
	}
	if to <= m.cycle {
		return
	}
	from := m.cycle
	if m.obs != nil && (m.obs.sampleEvery > 0 || m.obs.ckptEvery > 0) {
		// Metrics samples and rewind checkpoints due inside the window are
		// taken mid-jump: the batch advance splits at each grid cycle, and —
		// because batchAdvance charges exactly the counter effects per-cycle
		// stepping would have, and nothing else changes while the machine is
		// quiescent — the snapshot at each split point is byte-identical to
		// the one a real tick stopping there would record. The two grids are
		// merged by walking to the nearest upcoming cycle of either; a cycle
		// on both fires sample first, then checkpoint, matching obsEndTick.
		// The jump itself is not capped, so sampling leaves the jump count
		// and the cycles executed for real exactly as they are without it.
		o := m.obs
		for {
			next := to + 1
			if o.sampleEvery > 0 {
				if s := (m.cycle/o.sampleEvery + 1) * o.sampleEvery; s < next {
					next = s
				}
			}
			if o.ckptEvery > 0 {
				if c := (m.cycle/o.ckptEvery + 1) * o.ckptEvery; c < next {
					next = c
				}
			}
			if next > to {
				break
			}
			m.batchAdvance(m.cycle, next)
			m.cycle = next
			if o.sampleEvery > 0 && next%o.sampleEvery == 0 {
				m.obsTakeSample()
			}
			if o.ckptEvery > 0 && next%o.ckptEvery == 0 {
				m.obsCheckpoint()
			}
		}
		if o.sampleEvery > 0 {
			o.nextSampleAt = (to/o.sampleEvery + 1) * o.sampleEvery
		}
		if o.ckptEvery > 0 {
			o.nextCkptAt = (to/o.ckptEvery + 1) * o.ckptEvery
		}
	}
	if to > m.cycle {
		m.batchAdvance(m.cycle, to)
	}
	if m.obs != nil {
		m.obs.rec.FFJump(from+1, to)
	}
	m.ffJumps++
	m.ffSkipped += to - from
	m.cycle = to
}

// nextWake returns the earliest cycle > m.cycle at which any unit (or the
// fault plan) could change machine state, given that the tick that just ran
// was quiescent.
func (m *Machine) nextWake() int64 {
	now := m.cycle
	w := wakeInf
	for _, u := range m.units {
		if uw := m.unitWake(u, now); uw < w {
			w = uw
		}
	}
	for _, u := range m.active {
		if uw := m.unitWake(u, now); uw < w {
			w = uw
		}
	}
	if m.faults != nil {
		if fw := m.faults.nextBoundary(now); fw < w {
			w = fw
		}
	}
	return w
}

func (m *Machine) unitWake(u *Unit, now int64) int64 {
	if m.stuck(u) {
		return wakeInf // thaws only at a fault boundary
	}
	if now < u.startAt {
		return u.startAt
	}
	// NDRange work-item issue needs no candidate: if the top region could
	// accept, the tick would have issued (non-quiescent); stage-0 freeing is
	// op-driven and covered by the segment wakes below.
	return m.regionWake(u.top, now)
}

func (m *Machine) regionWake(re *regionExec, now int64) int64 {
	w := wakeInf
	for _, it := range re.items {
		var iw int64
		switch it := it.(type) {
		case *segExec:
			iw = m.segWake(it, now)
		case *loopExec:
			iw = m.loopWake(it, now)
		}
		if iw < w {
			w = iw
		}
	}
	return w
}

// segWake: an empty segment only batch-advances its shift counter (no timed
// wake); a stalled segment wakes when its stall window expires; otherwise
// the oldest flow with pending ops is blocked on exactly its next op.
func (m *Machine) segWake(se *segExec, now int64) int64 {
	if len(se.flows) == 0 {
		return wakeInf
	}
	if se.stallUntil > now {
		return se.stallUntil
	}
	for _, f := range se.flows {
		if ops := se.byStage[f.stage]; f.opPtr < len(ops) {
			return m.opWake(f.c, ops[f.opPtr], now)
		}
	}
	// every op complete: the segment would advance, contradicting
	// quiescence; fall back to per-cycle stepping
	return now + 1
}

// opWake reports when a blocked op's inputs could mature. A pending guard or
// argument with a finite ready time gives an exact wake; Future means the
// producer is itself op-driven (its own wake is counted where it is
// blocked). Ready-but-refused channel ops have no timed wake. Anything else
// (intrinsic logic, unmodelled states) conservatively disables skipping.
func (m *Machine) opWake(c *Ctx, op *hls.XOp, now int64) int64 {
	if op.Guard >= 0 {
		if g := c.readyAt(op.Guard); g > now {
			if g == Future {
				return wakeInf
			}
			return g
		}
	}
	var wake int64
	for _, a := range op.Args {
		if a < 0 {
			continue
		}
		r := c.readyAt(a)
		if r <= now {
			continue
		}
		if r == Future {
			return wakeInf
		}
		if r > wake {
			wake = r
		}
	}
	if wake > now {
		return wake
	}
	switch op.Kind {
	case kir.OpChanRead, kir.OpChanWrite:
		return wakeInf // only a counterpart commit or a fault thaw helps
	}
	return now + 1
}

func (m *Machine) loopWake(le *loopExec, now int64) int64 {
	w := m.regionWake(le.body, now)
	for _, r := range le.residents {
		if rw := m.residentWake(le, r, now); rw < w {
			w = rw
		}
	}
	return w
}

// residentWake reports when a parked loop resident could evaluate its bounds
// or issue its next iteration.
func (m *Machine) residentWake(le *loopExec, r *resident, now int64) int64 {
	pc := r.parentFlow.c
	if !r.evaluated {
		var wake int64
		for _, s := range []int{le.r.StartSlot, le.r.EndSlot, le.r.StepSlot} {
			rd := pc.readyAt(s)
			if rd <= now {
				continue
			}
			if rd == Future {
				return wakeInf
			}
			if rd > wake {
				wake = rd
			}
		}
		for _, cc := range le.r.Carried {
			if pc.readyAt(cc.InitSlot) == Future {
				return wakeInf
			}
		}
		if wake > now {
			return wake
		}
		return now + 1 // evaluable now: should not happen in a quiescent tick
	}
	if !r.infinite && r.nextIter >= r.total {
		return wakeInf // draining: retirement is op-driven
	}
	if r.inflight >= maxInflight || !le.body.canAccept() {
		return wakeInf // backpressure releases op-driven
	}
	wake := now
	if le.multithread {
		for k := range le.r.Carried {
			st := &r.carr[k]
			if st.iter != r.nextIter-1 {
				return wakeInf // carried chain advances op-driven
			}
			if st.readyAt > now {
				if st.readyAt == Future {
					return wakeInf
				}
				if st.readyAt > wake {
					wake = st.readyAt
				}
			}
		}
		if le.anyIssue && le.r.II > 1 {
			if iw := le.iiWake(now); iw > wake {
				wake = iw // conjunctive with carried readiness: take the max
			}
		}
	} else {
		if le.r.II == 0 {
			if r.inflight > 0 {
				return wakeInf // sequential composite: next issue is op-driven
			}
			return now + 1 // issuable now: should not happen when quiescent
		}
		if le.anyIssue {
			if iw := le.iiWake(now); iw > wake {
				wake = iw
			}
		}
	}
	if wake <= now {
		return now + 1
	}
	return wake
}

// iiWake is the earliest cycle at which the body's shift counter reaches the
// II spacing required for the next issue, assuming the body's first segment
// stays empty (it shifts once per un-stalled cycle). If the segment holds
// flows its advance is op-driven and its own wake candidates apply.
func (le *loopExec) iiWake(now int64) int64 {
	if len(le.body.items) == 0 {
		return now + 1
	}
	se, ok := le.body.items[0].(*segExec)
	if !ok {
		return now + 1 // no shift pacing to wait for
	}
	if len(se.flows) > 0 {
		return wakeInf
	}
	needed := le.lastIssueShift + int64(le.r.II) - se.shifts
	if needed <= 0 {
		return now + 1
	}
	// shifts(t-1) = shifts(now) + (t-1 - base) for t-1 >= base, where base
	// accounts for a pending stall window; eligibility at cycle t sees the
	// counter as of t-1
	base := now
	if se.stallUntil-1 > base {
		base = se.stallUntil - 1
	}
	return base + needed + 1
}

// nextBoundary returns the earliest upcoming fault-event transition. Jumps
// never cross one: applyFaults runs per-tick, so every onset and expiry must
// be observed at its exact cycle.
func (fr *faultRuntime) nextBoundary(now int64) int64 {
	w := wakeInf
	for i := range fr.events {
		re := &fr.events[i]
		if re.ev.Kind == fault.LaunchSkew {
			continue // applied at install time; no runtime transition
		}
		if b := re.ev.NextBoundary(now); b < w {
			w = b
		}
	}
	return w
}

// batchAdvance replays, in O(items), the per-cycle side effects the skipped
// window (from, to] would have produced: empty segments shift once per
// un-stalled cycle, blocked channel ops charge one stall per retried cycle,
// and blocked-op bookkeeping stays contiguous so DeadlockReport wait
// durations are exact.
func (m *Machine) batchAdvance(from, to int64) {
	for _, u := range m.units {
		m.batchUnit(u, from, to)
	}
	for _, u := range m.active {
		m.batchUnit(u, from, to)
	}
}

func (m *Machine) batchUnit(u *Unit, from, to int64) {
	if m.stuck(u) || from < u.startAt {
		return // the unit does not tick in this window
	}
	stalledSegs := 0
	m.batchRegion(u, u.top, from, to, &stalledSegs)
	if u.block.op != nil && u.block.last == from {
		u.block.last = to
		if stalledSegs > 1 {
			// with several stalled segments the per-cycle bookkeeping
			// ping-pongs between their front ops, restarting the wait clock
			// every cycle; the final record's interval starts at the last
			// skipped cycle
			u.block.since = to
		}
	}
}

func (m *Machine) batchRegion(u *Unit, re *regionExec, from, to int64, stalledSegs *int) {
	for _, it := range re.items {
		switch it := it.(type) {
		case *segExec:
			if len(it.flows) == 0 {
				lo := from + 1
				if it.stallUntil > lo {
					lo = it.stallUntil
				}
				if to >= lo {
					it.shifts += to - lo + 1
				}
				continue
			}
			if it.stallUntil > from {
				continue // stalled through the window (wake capped at expiry)
			}
			for _, f := range it.flows {
				ops := it.byStage[f.stage]
				if f.opPtr >= len(ops) {
					continue
				}
				op := ops[f.opPtr]
				*stalledSegs++
				if ch := m.chanStallTarget(f.c, op, from); ch != nil {
					if op.Kind == kir.OpChanRead {
						ch.AddReadStalls(to - from)
						if m.obs != nil {
							m.obsExtendStall(u, op.ChID, 0, from, to)
						}
					} else {
						ch.AddWriteStalls(to - from)
						if m.obs != nil {
							m.obsExtendStall(u, op.ChID, 1, from, to)
						}
					}
				}
				break // only the front blocked op retries each cycle
			}
		case *loopExec:
			m.batchRegion(u, it.body, from, to, stalledSegs)
		}
	}
}

// chanStallTarget returns the channel whose stall counter the blocked op
// charges each retried cycle, mirroring execOp's early-outs: a pending guard
// or argument fails before the channel is consulted (no stat), a false guard
// would have skipped the op (not blocked), and only blocking channel ops
// reach TryRead/TryWrite.
func (m *Machine) chanStallTarget(c *Ctx, op *hls.XOp, now int64) *channel.Channel {
	if op.Kind != kir.OpChanRead && op.Kind != kir.OpChanWrite {
		return nil
	}
	if op.Guard >= 0 {
		if c.readyAt(op.Guard) > now || c.val(op.Guard) == 0 {
			return nil
		}
	}
	for _, a := range op.Args {
		if a >= 0 && c.readyAt(a) > now {
			return nil
		}
	}
	return m.chans[op.ChID]
}
