package sim

import (
	"errors"
	"fmt"
	"math"

	"oclfpga/internal/channel"
	"oclfpga/internal/fault"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
)

// Time-travel state capture (DESIGN.md §14). StateDump snapshots the
// machine's observable state — unit states, channel occupancies, LSU queues,
// pending fault windows — as one deterministic document, and StateHash
// digests the same fields into the fingerprint checkpoints carry. Everything
// captured here is fast-forward-invariant: counters the batch path replays
// exactly, cycle-exact fault transitions, and blocked-op bookkeeping whose
// batch update mirrors the per-cycle path (see fastforward.go). Simulation-
// mode metadata (jump counts, observability state) is deliberately excluded,
// which is what makes a dump at cycle N byte-identical whether the machine
// stepped, skipped, or rewound its way there.

// MachineState is one cycle's full machine snapshot.
type MachineState struct {
	Design     string `json:"design"`
	DesignHash string `json:"designHash"` // FNV-1a over the schedule dump, hex
	Cycle      int64  `json:"cycle"`
	StateHash  string `json:"stateHash"` // Machine.StateHash, hex
	// ActiveUnits counts launched units still running (0 = run complete).
	ActiveUnits int            `json:"activeUnits"`
	Units       []UnitState    `json:"units"`
	Channels    []ChannelState `json:"channels"`
	Faults      []FaultState   `json:"faults,omitempty"`
}

// UnitState is one compute-unit activation's snapshot.
type UnitState struct {
	Unit       string `json:"unit"`
	Kernel     string `json:"kernel"`
	Mode       string `json:"mode"`
	State      string `json:"state"` // pending | running | blocked | done
	StartAt    int64  `json:"startAt"`
	StartedAt  int64  `json:"startedAt,omitempty"`
	FinishedAt int64  `json:"finishedAt,omitempty"`
	GlobalSize int64  `json:"globalSize,omitempty"`
	IssuedWI   int64  `json:"issuedWI,omitempty"`
	DoneWI     int64  `json:"doneWI,omitempty"`
	// Blocked reports the op the unit is currently waiting on (nil when the
	// unit progressed within the last cycle — the DeadlockReport convention).
	Blocked *BlockedState `json:"blocked,omitempty"`
	LSUs    []LSUState    `json:"lsus,omitempty"`
	Locals  []LocalState  `json:"locals,omitempty"`
}

// BlockedState describes a unit's current blocked operation.
type BlockedState struct {
	Op     string `json:"op"`
	Chan   string `json:"chan,omitempty"`
	Dir    string `json:"dir,omitempty"` // read | write for channel ops
	Since  int64  `json:"since"`
	Waited int64  `json:"waited"`
}

// LSUState is one access site's load/store-unit snapshot, including the
// posted-store queue depth at the capture cycle.
type LSUState struct {
	Array         string `json:"array"`
	Kind          string `json:"kind"`
	PendingStores int    `json:"pendingStores"`
	mem.LSUStats
}

// LocalState is one on-chip local memory's traffic counters.
type LocalState struct {
	Name   string `json:"name"`
	Reads  int64  `json:"reads"`
	Writes int64  `json:"writes"`
}

// ChannelState is one channel's occupancy and statistics snapshot.
type ChannelState struct {
	Name  string `json:"name"`
	Depth int    `json:"depth"`
	Len   int    `json:"len"`
	channel.Stats
}

// FaultState is one installed fault event's window status at the capture
// cycle. Spec is the event in fault.ParseSpec syntax; NextBoundary is the
// next cycle its activation can change (0 when no transition remains).
type FaultState struct {
	Spec         string `json:"spec"`
	Active       bool   `json:"active"`
	Applied      bool   `json:"applied,omitempty"` // point events only
	NextBoundary int64  `json:"nextBoundary,omitempty"`
}

// fnv1aOffset/fnv1aPrime are the standard 64-bit FNV-1a parameters; the
// hasher is hand-rolled (no hash/fnv Writer) so checkpoint capture allocates
// nothing on the simulation path.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

type stateHasher uint64

func newStateHasher() stateHasher { return fnv1aOffset }

func (h *stateHasher) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnv1aPrime
		v >>= 8
	}
	*h = stateHasher(x)
}

func (h *stateHasher) i64(v int64) { h.u64(uint64(v)) }

func (h *stateHasher) boolean(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

func (h *stateHasher) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnv1aPrime
	}
	*h = stateHasher(x)
	h.u64(uint64(len(s)))
}

// DesignHash fingerprints the loaded design: FNV-1a over the schedule dump,
// which covers kernels, scheduling, channel depths, and LSU selection — the
// things that must match for a rewind's re-execution to be the same run.
// Computed once per machine.
func (m *Machine) DesignHash() uint64 {
	if m.dHash == 0 {
		h := newStateHasher()
		h.str(m.d.Program.Name)
		h.str(m.d.DumpSchedule())
		m.dHash = uint64(h)
		if m.dHash == 0 {
			m.dHash = 1 // keep 0 as the "not yet computed" sentinel
		}
	}
	return m.dHash
}

// faultSeed returns the installed fault plan's seed (0 when no plan).
func (m *Machine) faultSeed() int64 {
	if m.opts.Fault == nil {
		return 0
	}
	return m.opts.Fault.Seed
}

// StateHash digests the machine's fast-forward-invariant observable state:
// the cycle clock, per-channel occupancy and statistics, per-unit progress
// and blocked-op bookkeeping, per-site LSU counters and posted-store queue
// depths, local-memory traffic, and fault window status. It hashes exactly
// the fields StateDump reports, so a matching hash means a matching dump.
func (m *Machine) StateHash() uint64 {
	h := newStateHasher()
	h.i64(m.cycle)
	h.u64(uint64(len(m.active)))
	for _, ch := range m.chans {
		h.u64(uint64(ch.Len()))
		st := ch.Stats()
		h.i64(st.Writes)
		h.i64(st.Reads)
		h.i64(st.WriteStalls)
		h.i64(st.ReadStalls)
		h.i64(st.Dropped)
		h.u64(uint64(st.MaxOccupancy))
	}
	for _, u := range m.units {
		m.hashUnit(&h, u)
	}
	for _, u := range m.launched {
		m.hashUnit(&h, u)
	}
	if m.faults != nil {
		for i := range m.faults.events {
			re := &m.faults.events[i]
			h.boolean(re.applied)
			// computed, not re.active: the runtime's MemDelay edge detection
			// only maintains re.active when observability is attached
			h.boolean(re.ev.ActiveAt(m.cycle))
		}
	}
	return uint64(h)
}

func (m *Machine) hashUnit(h *stateHasher, u *Unit) {
	h.i64(u.startAt)
	h.boolean(u.started)
	h.i64(u.startedAt)
	h.i64(u.finishedAt)
	h.i64(u.globalSize)
	h.i64(u.issuedWI)
	h.i64(u.doneWI)
	h.boolean(u.topDone)
	b := &u.block
	h.boolean(b.op != nil)
	if b.op != nil {
		h.u64(uint64(int64(b.chID)))
		h.str(b.dir)
		h.i64(b.since)
		h.i64(b.last)
	}
	for _, lsu := range u.lsus {
		if lsu == nil {
			continue
		}
		st := lsu.Stats()
		h.i64(st.Loads)
		h.i64(st.Stores)
		h.i64(st.LineFetches)
		h.i64(st.CoalesceHits)
		h.i64(st.TotalLoadLat)
		h.i64(st.MaxLoadLat)
		h.i64(st.StoreStalls)
		h.u64(uint64(lsu.PendingStores(m.cycle)))
	}
	for _, lm := range u.locals {
		h.i64(lm.Reads)
		h.i64(lm.Writes)
	}
}

// StateDump snapshots the machine as one deterministic document. Units are
// reported in creation order: autorun units first, then launches in launch
// order (finished launches included — unlike m.active, the launched list
// never drops them).
func (m *Machine) StateDump() *MachineState {
	ms := &MachineState{
		Design:      m.d.Program.Name,
		DesignHash:  fmt.Sprintf("%016x", m.DesignHash()),
		Cycle:       m.cycle,
		StateHash:   fmt.Sprintf("%016x", m.StateHash()),
		ActiveUnits: len(m.active),
	}
	for _, u := range m.units {
		ms.Units = append(ms.Units, m.unitState(u))
	}
	for _, u := range m.launched {
		ms.Units = append(ms.Units, m.unitState(u))
	}
	for _, ch := range m.chans {
		ms.Channels = append(ms.Channels, ChannelState{
			Name:  ch.Name(),
			Depth: ch.Depth(),
			Len:   ch.Len(),
			Stats: ch.Stats(),
		})
	}
	if m.faults != nil {
		for i := range m.faults.events {
			re := &m.faults.events[i]
			fs := FaultState{Spec: re.ev.String(), Applied: re.applied}
			switch re.ev.Kind {
			case fault.DepthOverride, fault.LaunchSkew:
				// point events: applied is the whole story
			default:
				fs.Active = re.ev.ActiveAt(m.cycle)
			}
			if b := re.ev.NextBoundary(m.cycle); b < math.MaxInt64 {
				fs.NextBoundary = b
			}
			ms.Faults = append(ms.Faults, fs)
		}
	}
	return ms
}

// unitBlocked reports whether the unit's blocked-op record is current — the
// DeadlockReport convention: blocked this cycle or the one before.
func (m *Machine) unitBlocked(u *Unit) bool {
	return u.block.op != nil && u.block.last >= m.cycle-1
}

// unitStateName classifies a unit the way UnitState.State and
// unit:NAME.state=S breakpoints both report it.
func (m *Machine) unitStateName(u *Unit) string {
	switch {
	case !u.started:
		return "pending"
	case !u.autorun() && (u.finishedAt > 0 || u.Done()):
		return "done"
	case m.unitBlocked(u):
		return "blocked"
	default:
		return "running"
	}
}

func (m *Machine) unitState(u *Unit) UnitState {
	us := UnitState{
		Unit:       u.xk.UnitName(),
		Kernel:     u.xk.Name,
		Mode:       u.xk.Mode.String(),
		StartAt:    u.startAt,
		FinishedAt: u.finishedAt,
		GlobalSize: u.globalSize,
		IssuedWI:   u.issuedWI,
		DoneWI:     u.doneWI,
	}
	if u.started {
		us.StartedAt = u.startedAt
	}
	blocked := m.unitBlocked(u)
	us.State = m.unitStateName(u)
	if blocked {
		bs := &BlockedState{
			Op:     u.block.op.Kind.String(),
			Dir:    u.block.dir,
			Since:  u.block.since,
			Waited: m.cycle - u.block.since,
		}
		if u.block.chID >= 0 {
			bs.Chan = m.chans[u.block.chID].Name()
		}
		us.Blocked = bs
	}
	for i, lsu := range u.lsus {
		if lsu == nil {
			continue
		}
		site := u.xk.LSUs[i]
		us.LSUs = append(us.LSUs, LSUState{
			Array:         site.Arr.Name,
			Kind:          site.Kind.String(),
			PendingStores: lsu.PendingStores(m.cycle),
			LSUStats:      lsu.Stats(),
		})
	}
	for _, lm := range u.locals {
		us.Locals = append(us.Locals, LocalState{Name: lm.Name, Reads: lm.Reads, Writes: lm.Writes})
	}
	return us
}

// RunTo advances the machine to exactly cycle target, whether or not the
// launched work completes on the way — the rewind primitive: re-execute
// deterministically, stop on the dot. Reaching the target is not an error;
// a genuine deadlock or fault error surfaces as usual.
func (m *Machine) RunTo(target int64) error {
	if target < m.cycle {
		return fmt.Errorf("sim: RunTo(%d): cycle is in the past (machine at %d)", target, m.cycle)
	}
	if target > m.cycle && len(m.active) > 0 {
		err := m.RunFor(target - m.cycle)
		if err != nil {
			var de *DeadlockError
			if !errors.As(err, &de) || de.Report.Reason != ReasonBudget {
				return err
			}
			// budget exhausted = landed exactly on target
		}
	}
	if m.cycle < target {
		// launched work drained early (or none was pending): step the autorun
		// fabric the rest of the way
		m.Step(target - m.cycle)
	}
	return nil
}

// obsCheckpoint emits a rewind checkpoint instant at the current cycle. Like
// samples, checkpoint-grid cycles are fast-forward deadlines (the jump splits
// at each one), so the recorded state hash is exactly the per-cycle path's.
func (m *Machine) obsCheckpoint() {
	o := m.obs
	if o.kCkpt == 0 {
		o.kCkpt = o.rec.Intern(obs.KindCheckpoint)
		o.ckptTrack = o.rec.Intern(obs.CheckpointTrack)
		o.ckptName = o.rec.Intern(obs.CheckpointName)
	}
	detail := obs.FormatCheckpointDetail(obs.Checkpoint{
		Cycle:      m.cycle,
		DesignHash: m.DesignHash(),
		Seed:       m.faultSeed(),
		StateHash:  m.StateHash(),
		FFJumps:    m.ffJumps,
		FFSkipped:  m.ffSkipped,
	})
	o.rec.InstantID(o.kCkpt, o.ckptTrack, o.ckptName, m.cycle, obs.LitDetail(o.rec.Intern(detail)))
}
