package sim

import "math"

// Future marks a slot whose value has not been produced yet.
const Future = int64(math.MaxInt64)

// Ctx is one execution context: a single-task kernel activation, one
// work-item, or one loop iteration. It owns a private copy of the kernel's
// value slots so that pipelined iterations in flight do not clobber each
// other, mirroring the per-stage registers of the synthesized pipeline.
type Ctx struct {
	slots []int64
	ready []int64 // cycle at which the slot's value may be consumed

	owner *loopExec // loop this context is an iteration of (nil at top)
	iter  int64     // iteration index within owner
	resID int       // resident id within owner (work-item threading)
	wiID  int64     // get_global_id(0) for NDRange work-items

	// fwd maps a slot to the carried-variable indexes of owner whose Next
	// value that slot holds; writes trigger forwarding to the successor
	// iteration.
	fwd map[int][]int
}

// allocCtx returns a cleared context sized for the unit's kernel, recycling
// a retired one when available — contexts churn once per work-item and once
// per loop iteration, so pooling removes the dominant allocation source in
// the simulation hot path.
func (u *Unit) allocCtx() *Ctx {
	n := u.xk.NumSlots
	c := u.takeCtx(n)
	for i := range c.slots {
		c.slots[i] = 0
		c.ready[i] = Future
	}
	return c
}

// childCtx clones pc for a loop iteration: parent-computed values (and their
// pending ready times) are visible; everything else stays Future.
func (u *Unit) childCtx(pc *Ctx) *Ctx {
	c := u.takeCtx(len(pc.slots))
	copy(c.slots, pc.slots)
	copy(c.ready, pc.ready)
	c.wiID = pc.wiID
	return c
}

// takeCtx pops a pooled context (or makes one) with slot arrays of length n
// and neutral metadata; the caller initializes slot contents.
func (u *Unit) takeCtx(n int) *Ctx {
	if k := len(u.ctxPool); k > 0 {
		c := u.ctxPool[k-1]
		u.ctxPool[k-1] = nil
		u.ctxPool = u.ctxPool[:k-1]
		if cap(c.slots) < n {
			c.slots = make([]int64, n)
			c.ready = make([]int64, n)
		} else {
			c.slots = c.slots[:n]
			c.ready = c.ready[:n]
		}
		return c
	}
	return &Ctx{slots: make([]int64, n), ready: make([]int64, n)}
}

// freeCtx recycles a retired context. The caller must guarantee nothing
// still references it (loop engines purge waiting lists before retiring).
func (u *Unit) freeCtx(c *Ctx) {
	c.owner = nil
	c.iter, c.resID, c.wiID = 0, 0, 0
	c.fwd = nil
	u.ctxPool = append(u.ctxPool, c)
}

// newFlow returns a flow carrier for c, recycled when possible.
func (u *Unit) newFlow(c *Ctx) *flow {
	if k := len(u.flowPool); k > 0 {
		f := u.flowPool[k-1]
		u.flowPool[k-1] = nil
		u.flowPool = u.flowPool[:k-1]
		*f = flow{c: c}
		return f
	}
	return &flow{c: c}
}

// freeFlow recycles a flow whose context has left the region tree.
func (u *Unit) freeFlow(f *flow) {
	*f = flow{}
	u.flowPool = append(u.flowPool, f)
}

// grow extends the slot arrays (contexts are sized per kernel; grow guards
// against slot tables that expanded during lowering).
func (c *Ctx) grow(n int) {
	for len(c.slots) < n {
		c.slots = append(c.slots, 0)
		c.ready = append(c.ready, Future)
	}
}

// readyAt reports when slot s may be consumed (Future if unwritten).
func (c *Ctx) readyAt(s int) int64 {
	if s < 0 {
		return 0
	}
	if s >= len(c.ready) {
		return Future
	}
	return c.ready[s]
}

// val returns the current value of slot s.
func (c *Ctx) val(s int) int64 {
	if s < 0 || s >= len(c.slots) {
		return 0
	}
	return c.slots[s]
}

// write stores a value with its availability cycle and fires carried-value
// forwarding hooks.
func (c *Ctx) write(s int, v, at int64) {
	if s < 0 {
		return
	}
	c.grow(s + 1)
	c.slots[s] = v
	c.ready[s] = at
	if c.owner != nil {
		if ks, ok := c.fwd[s]; ok {
			for _, k := range ks {
				c.owner.forward(c, k, v, at)
			}
		}
	}
}
