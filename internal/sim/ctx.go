package sim

import "math"

// Future marks a slot whose value has not been produced yet.
const Future = int64(math.MaxInt64)

// Ctx is one execution context: a single-task kernel activation, one
// work-item, or one loop iteration. It owns a private copy of the kernel's
// value slots so that pipelined iterations in flight do not clobber each
// other, mirroring the per-stage registers of the synthesized pipeline.
type Ctx struct {
	slots []int64
	ready []int64 // cycle at which the slot's value may be consumed

	owner *loopExec // loop this context is an iteration of (nil at top)
	iter  int64     // iteration index within owner
	resID int       // resident id within owner (work-item threading)
	wiID  int64     // get_global_id(0) for NDRange work-items

	// fwd maps a slot to the carried-variable indexes of owner whose Next
	// value that slot holds; writes trigger forwarding to the successor
	// iteration.
	fwd map[int][]int
}

func newTopCtx(nslots int) *Ctx {
	c := &Ctx{slots: make([]int64, nslots), ready: make([]int64, nslots)}
	for i := range c.ready {
		c.ready[i] = Future
	}
	return c
}

// child clones the context for a loop iteration: parent-computed values
// (and their pending ready times) are visible; everything else stays Future.
func (c *Ctx) child() *Ctx {
	n := &Ctx{
		slots: make([]int64, len(c.slots)),
		ready: make([]int64, len(c.ready)),
		wiID:  c.wiID,
	}
	copy(n.slots, c.slots)
	copy(n.ready, c.ready)
	return n
}

// grow extends the slot arrays (contexts are sized per kernel; grow guards
// against slot tables that expanded during lowering).
func (c *Ctx) grow(n int) {
	for len(c.slots) < n {
		c.slots = append(c.slots, 0)
		c.ready = append(c.ready, Future)
	}
}

// readyAt reports when slot s may be consumed (Future if unwritten).
func (c *Ctx) readyAt(s int) int64 {
	if s < 0 {
		return 0
	}
	if s >= len(c.ready) {
		return Future
	}
	return c.ready[s]
}

// val returns the current value of slot s.
func (c *Ctx) val(s int) int64 {
	if s < 0 || s >= len(c.slots) {
		return 0
	}
	return c.slots[s]
}

// write stores a value with its availability cycle and fires carried-value
// forwarding hooks.
func (c *Ctx) write(s int, v, at int64) {
	if s < 0 {
		return
	}
	c.grow(s + 1)
	c.slots[s] = v
	c.ready[s] = at
	if c.owner != nil {
		if ks, ok := c.fwd[s]; ok {
			for _, k := range ks {
				c.owner.forward(c, k, v, at)
			}
		}
	}
}
