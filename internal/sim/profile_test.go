package sim

import (
	"strings"
	"testing"

	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
)

// streamProgram: producer kernel pushes N values through a channel to a
// consumer kernel — a two-kernel pipeline, the channel-profiling target.
func streamProgram(depth int) *kir.Program {
	p := kir.NewProgram("stream")
	ch := p.AddChan("pipe", depth, kir.I32)
	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", 64, nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(ch, lb.Load(src, i))
		return nil
	})
	cons := p.AddKernel("consumer", kir.SingleTask)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", 64, nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.Store(dst, i, lb.Mul(lb.ChanRead(ch), lb.Ci32(2)))
		return nil
	})
	return p
}

func TestKernelToKernelStreaming(t *testing.T) {
	m := New(compile(t, streamProgram(8), hls.Options{}), Options{})
	src := must(m.NewBuffer("src", kir.I32, 64))
	dst := must(m.NewBuffer("dst", kir.I32, 64))
	for i := range src.Data {
		src.Data[i] = int64(i + 1)
	}
	if _, err := m.Launch("producer", Args{"src": src}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("consumer", Args{"dst": dst}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst.Data {
		if dst.Data[i] != int64(2*(i+1)) {
			t.Fatalf("dst[%d] = %d", i, dst.Data[i])
		}
	}
}

func TestProfileReportsChannelActivity(t *testing.T) {
	m := New(compile(t, streamProgram(2), hls.Options{}), Options{})
	src := must(m.NewBuffer("src", kir.I32, 64))
	dst := must(m.NewBuffer("dst", kir.I32, 64))
	pu, err := m.Launch("producer", Args{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	cu, err := m.Launch("consumer", Args{"dst": dst})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	r := m.Profile(pu, cu)
	if len(r.Channels) != 1 {
		t.Fatalf("%d channel rows", len(r.Channels))
	}
	c := r.Channels[0]
	if c.Name != "pipe" || c.Writes != 64 || c.Reads != 64 {
		t.Fatalf("channel profile = %+v", c)
	}
	// a depth-2 channel between a fast producer and a mul-latency consumer
	// must show backpressure somewhere
	if c.WriteStalls == 0 && c.ReadStalls == 0 {
		t.Fatalf("no stalls recorded on a shallow channel: %+v", c)
	}
	if c.MaxOccupancy == 0 || c.MaxOccupancy > 2 {
		t.Fatalf("occupancy %d out of range", c.MaxOccupancy)
	}
	// LSU rows: producer load site + consumer store site
	if len(r.LSUs) != 2 {
		t.Fatalf("%d LSU rows", len(r.LSUs))
	}
	if r.BandwidthBytes(64) <= 0 {
		t.Fatal("no bandwidth accounted")
	}
	out := r.String()
	for _, want := range []string{"pipe", "producer", "consumer", "burst-coalesced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestProfileEmptyChannelsElided(t *testing.T) {
	p := kir.NewProgram("quiet")
	p.AddChan("unused", 4, kir.I32)
	k := p.AddKernel("k", kir.SingleTask)
	z := k.AddGlobal("z", kir.I32)
	b := k.NewBuilder()
	b.Store(z, b.Ci32(0), b.Ci32(1))
	// silence the unused-channel validator by adding endpoints in two
	// never-launched kernels
	k2 := p.AddKernel("w", kir.SingleTask)
	zz := k2.AddScalar("v", kir.I32)
	b2 := k2.NewBuilder()
	b2.ChanWrite(p.ChanByName("unused"), zz.Val)
	k3 := p.AddKernel("r", kir.SingleTask)
	g3 := k3.AddGlobal("g", kir.I32)
	b3 := k3.NewBuilder()
	b3.Store(g3, b3.Ci32(0), b3.ChanRead(p.ChanByName("unused")))

	m := New(compile(t, p, hls.Options{}), Options{})
	z2 := must(m.NewBuffer("z", kir.I32, 1))
	u, err := m.Launch("k", Args{"z": z2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	r := m.Profile(u)
	if len(r.Channels) != 0 {
		t.Fatalf("quiet channel reported: %+v", r.Channels)
	}
}

func TestVCDRecorder(t *testing.T) {
	m := New(compile(t, streamProgram(4), hls.Options{}), Options{})
	vcd := m.NewVCD("pipe")
	src := must(m.NewBuffer("src", kir.I32, 64))
	dst := must(m.NewBuffer("dst", kir.I32, 64))
	for i := range src.Data {
		src.Data[i] = int64(i)
	}
	if _, err := m.Launch("producer", Args{"src": src}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("consumer", Args{"dst": dst}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if vcd.Changes() < 10 {
		t.Fatalf("only %d changes captured", vcd.Changes())
	}
	var sb strings.Builder
	if err := vcd.Flush(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$enddefinitions",
		"$var wire 8", // occupancy vector
		"pipe_occ",
		"pipe_valid",
		"#1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out[:min(400, len(out))])
		}
	}
	// the occupancy signal must actually toggle (data flowed through)
	if !strings.Contains(out, "b1 ") && !strings.Contains(out, "b10 ") {
		t.Fatalf("occupancy never became nonzero:\n%s", out[:min(600, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
