// Package device catalogs the FPGA platforms used in the paper's
// experimental methodology (§2): a discrete Stratix V, a discrete Arria 10,
// and an Arria 10 integrated with a Broadwell-EP Xeon. Each profile carries
// the capacities and the timing-model calibration constants used by
// internal/area.
//
// Calibration: the timing constants are fitted so that the *base* designs
// reproduce the paper's reported baseline clock frequencies (pointer chase
// at 233.3 MHz, matrix multiply at ~310 MHz on Stratix V); the profiling
// overheads — the paper's actual result — are then measured, not asserted.
package device

// Device is one FPGA platform profile.
type Device struct {
	Name string

	// Capacities.
	ALMs     int   // adaptive logic modules
	Regs     int   // flip-flops
	M20Ks    int   // 20Kb RAM blocks
	DSPs     int   // DSP blocks
	MemBits  int64 // total block-RAM bits
	M20KBits int64 // bits per RAM block

	// Static region (board support package / shell). Quartus reports in the
	// paper's Table 1 include the shell, which is why "Base" is already 177K.
	ShellALUTs   int
	ShellRegs    int
	ShellM20Ks   int
	ShellMemBits int64

	// Timing-model calibration (see package comment).
	BaseNS    float64 // intrinsic pipeline stage delay, ns
	ALUTScale float64 // ns added per log2(kernel kALUTs + 1)
	MemDepNS  float64 // ns added by a loop-carried global-memory dependence
	UtilNS    float64 // ns added per unit of device utilization squared

	// Critical-path floors of attached profiling structures, ns. These model
	// the paper's observation that instrumentation drags high-Fmax kernels
	// down to the instrumentation's own achievable frequency (−20.5% on
	// matrix multiply) while barely affecting slow kernels (<3% on pointer
	// chase).
	TraceBufNS  float64 // plain trace buffer + counters (§3.1 experiment)
	StallMonNS  float64 // stall monitor ibuffer (§5.1)
	WatchNS     float64 // smart watchpoint ibuffer (§5.2)
	CouplingCL  float64 // extra ns on kernel paths per OpenCL-counter tap
	CouplingHDL float64 // extra ns on kernel paths per HDL-counter tap
	CouplingIB  float64 // extra ns on kernel paths per ibuffer data tap

	// FmaxCapMHz bounds any design on this device.
	FmaxCapMHz float64
}

// StratixV is the discrete Stratix V GX A7 platform the paper mainly
// reports on.
func StratixV() *Device {
	return &Device{
		Name:     "Stratix V GX A7",
		ALMs:     234720,
		Regs:     938880,
		M20Ks:    2560,
		DSPs:     256,
		MemBits:  52428800,
		M20KBits: 20480,

		ShellALUTs:   158000,
		ShellRegs:    290000,
		ShellM20Ks:   384,
		ShellMemBits: 2850000,

		BaseNS:    2.80,
		ALUTScale: 0.065,
		MemDepNS:  1.06,
		UtilNS:    0.35,

		TraceBufNS:  3.90,
		StallMonNS:  4.058,
		WatchNS:     4.00,
		CouplingCL:  0.035,
		CouplingHDL: 0.008,
		CouplingIB:  0.010,

		FmaxCapMHz: 350,
	}
}

// Arria10 is the discrete Arria 10 GX 1150 platform.
func Arria10() *Device {
	return &Device{
		Name:     "Arria 10 GX 1150",
		ALMs:     427200,
		Regs:     1708800,
		M20Ks:    2713,
		DSPs:     1518,
		MemBits:  55562240,
		M20KBits: 20480,

		ShellALUTs:   172000,
		ShellRegs:    335000,
		ShellM20Ks:   400,
		ShellMemBits: 3100000,

		BaseNS:    2.20,
		ALUTScale: 0.055,
		MemDepNS:  0.85,
		UtilNS:    0.30,

		TraceBufNS:  3.10,
		StallMonNS:  3.25,
		WatchNS:     3.20,
		CouplingCL:  0.028,
		CouplingHDL: 0.0064,
		CouplingIB:  0.008,

		FmaxCapMHz: 450,
	}
}

// Arria10Integrated is the Arria 10 integrated in an Intel Broadwell-EP
// package (the paper's third platform). Same fabric as the discrete part
// with a larger shell (coherent QPI/UPI bridge) and slightly worse routing.
func Arria10Integrated() *Device {
	d := Arria10()
	d.Name = "Arria 10 (Broadwell-EP integrated)"
	d.ShellALUTs = 196000
	d.ShellRegs = 372000
	d.ShellM20Ks = 450
	d.ShellMemBits = 3600000
	d.BaseNS = 2.34
	d.UtilNS = 0.34
	return d
}

// All returns the three platforms from the paper's methodology section.
func All() []*Device {
	return []*Device{StratixV(), Arria10(), Arria10Integrated()}
}
