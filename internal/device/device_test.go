package device

import "testing"

func TestCatalogComplete(t *testing.T) {
	devs := All()
	if len(devs) != 3 {
		t.Fatalf("All() returned %d devices, want 3 (paper §2)", len(devs))
	}
	seen := map[string]bool{}
	for _, d := range devs {
		if seen[d.Name] {
			t.Fatalf("duplicate device %q", d.Name)
		}
		seen[d.Name] = true
		if d.ALMs <= 0 || d.M20Ks <= 0 || d.MemBits <= 0 {
			t.Errorf("%s: non-positive capacities", d.Name)
		}
		if d.ShellALUTs <= 0 || d.ShellALUTs >= d.ALMs {
			t.Errorf("%s: shell %d out of range of %d ALMs", d.Name, d.ShellALUTs, d.ALMs)
		}
		if d.BaseNS <= 0 || d.FmaxCapMHz <= 0 {
			t.Errorf("%s: bad timing constants", d.Name)
		}
		if d.TraceBufNS <= d.BaseNS {
			t.Errorf("%s: trace buffer floor below base delay", d.Name)
		}
		if d.CouplingCL <= d.CouplingHDL {
			t.Errorf("%s: OpenCL-counter coupling must exceed HDL coupling (paper §3.1)", d.Name)
		}
	}
}

func TestArria10FasterFabricThanStratixV(t *testing.T) {
	s5, a10 := StratixV(), Arria10()
	if a10.BaseNS >= s5.BaseNS {
		t.Fatal("Arria 10 fabric should be faster (lower BaseNS) than Stratix V")
	}
	if a10.ALMs <= s5.ALMs {
		t.Fatal("Arria 10 GX 1150 is larger than Stratix V GX A7")
	}
}

func TestIntegratedHasLargerShell(t *testing.T) {
	d, i := Arria10(), Arria10Integrated()
	if i.ShellALUTs <= d.ShellALUTs {
		t.Fatal("integrated Arria 10 shell (coherent bridge) should be larger")
	}
	if i.ALMs != d.ALMs {
		t.Fatal("integrated part uses the same fabric capacity")
	}
}

func TestProfilesAreFreshCopies(t *testing.T) {
	a := StratixV()
	a.ShellALUTs = 1
	b := StratixV()
	if b.ShellALUTs == 1 {
		t.Fatal("StratixV() returned a shared instance")
	}
}
