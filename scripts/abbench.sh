#!/bin/sh
# abbench.sh — quick A/B recorder-overhead comparison: a baseline git ref
# (default HEAD) against the working tree. Both sides run the plain and
# observed throughput benchmarks briefly, benchjson derives each side's
# observe-overhead-pct, and the script prints the delta. Exits non-zero when
# the working tree's overhead regresses by more than ABBENCH_TOL percentage
# points (default 5 — generous because short runs are noisy; the hard
# <=10% bound is enforced separately by scripts/verify.sh).
#
#   ./scripts/abbench.sh              # HEAD vs working tree
#   ./scripts/abbench.sh origin/main  # explicit baseline ref
#
# Set ABBENCH_OUT to a directory to keep both sides' benchjson documents and
# the benchjson -diff delta table (CI uploads these as artifacts).
set -eu

cd "$(dirname "$0")/.."

REF="${1:-HEAD}"
BENCHTIME="${ABBENCH_BENCHTIME:-20x}"
COUNT="${ABBENCH_COUNT:-3}"
TOL="${ABBENCH_TOL:-5}"

TMP="$(mktemp -d)"
cleanup() {
    git worktree remove --force "$TMP/base" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

git worktree add --quiet --detach "$TMP/base" "$REF"

bench() (
    cd "$1"
    go test -run '^$' -bench 'SimThroughput/(Simulate$|SimulateObserved$)' \
        -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .
)

overhead() {
    sed -n 's/.*"observe-overhead-pct": \([-0-9.eE+]*\).*/\1/p' "$1"
}

bench "$TMP/base" | go run ./cmd/benchjson > "$TMP/base.json"
bench . | go run ./cmd/benchjson > "$TMP/tree.json"

if [ -n "${ABBENCH_OUT:-}" ]; then
    mkdir -p "$ABBENCH_OUT"
    cp "$TMP/base.json" "$ABBENCH_OUT/bench-base.json"
    cp "$TMP/tree.json" "$ABBENCH_OUT/bench-tree.json"
    go run ./cmd/benchjson -diff "$TMP/base.json" "$TMP/tree.json" \
        > "$ABBENCH_OUT/bench-diff.txt"
fi

BASE="$(overhead "$TMP/base.json")"
TREE="$(overhead "$TMP/tree.json")"

if [ -z "$TREE" ]; then
    echo "abbench: working tree produced no observe-overhead-pct" >&2
    exit 1
fi
if [ -z "$BASE" ]; then
    echo "abbench: baseline $REF has no observed benchmark; tree overhead ${TREE}% (no delta)"
    exit 0
fi

awk -v base="$BASE" -v tree="$TREE" -v tol="$TOL" -v ref="$REF" 'BEGIN {
    delta = tree - base
    printf "abbench: observe-overhead-pct %s=%.2f tree=%.2f delta=%+.2f (tolerance +%s)\n",
        ref, base, tree, delta, tol
    exit (delta > tol) ? 1 : 0
}'
