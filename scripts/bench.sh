#!/bin/sh
# bench.sh — run the full benchmark suite and record the numbers.
#
# Runs every benchmark three times with allocation stats and converts the
# output into BENCH_<n>.json (ns/op, simcycles/s, B/op, every custom metric,
# plus the derived fast-forward speedup and observability-recorder overhead).
# Pass the output filename as $1 to target a specific trajectory point;
# default BENCH_3.json.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchmem -count 3 . | tee "$RAW"
go run ./cmd/benchjson < "$RAW" > "$OUT"
echo "wrote $OUT"
