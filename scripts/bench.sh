#!/bin/sh
# bench.sh — run the full benchmark suite and record the numbers.
#
# Runs every benchmark three times with allocation stats and converts the
# output into BENCH_<n>.json (ns/op, simcycles/s, B/op, every custom metric,
# plus the derived fast-forward speedup, observability-recorder overhead,
# supervision overhead, checkpoint-grid overhead, and indexed-query speedup,
# stamped with the host fingerprint). Pass the output filename as $1 to
# target a specific trajectory point; default BENCH_9.json. The newest
# earlier BENCH_*.json is fingerprint-checked as the baseline, so numbers
# recorded on a different host warn instead of silently joining a trajectory,
# and the run ends with the benchjson -diff delta table against it.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_9.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

BASELINE=""
for f in $(ls BENCH_*.json 2>/dev/null | sort -r); do
    if [ "$f" != "$OUT" ]; then
        BASELINE="$f"
        break
    fi
done

go test -run '^$' -bench . -benchmem -count 3 . | tee "$RAW"
if [ -n "$BASELINE" ]; then
    go run ./cmd/benchjson -baseline "$BASELINE" < "$RAW" > "$OUT"
else
    go run ./cmd/benchjson < "$RAW" > "$OUT"
fi
echo "wrote $OUT"
if [ -n "$BASELINE" ]; then
    echo "delta vs $BASELINE:"
    go run ./cmd/benchjson -diff "$BASELINE" "$OUT"
fi
