#!/bin/sh
# verify.sh — the full pre-merge gate: static checks, a clean build, and the
# race-enabled test suite (the simulator is single-goroutine by design, but
# the host controller and examples are exercised under the detector anyway).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Fuzz smoke: a few seconds each on the parser fuzz targets (spec parser,
# NDJSON replay, and the flat binary codec). Any crasher fails the gate; the
# seed corpora alone already ran under `go test` above.
go test ./internal/fault -run '^$' -fuzz 'FuzzParseSpec$' -fuzztime 5s
go test ./internal/fault -run '^$' -fuzz 'FuzzParseSpecs$' -fuzztime 5s
go test ./internal/obs -run '^$' -fuzz 'FuzzReplayNDJSON$' -fuzztime 5s
go test ./internal/obs -run '^$' -fuzz 'FuzzFlatCodec$' -fuzztime 5s
go test ./internal/obs -run '^$' -fuzz 'FuzzManifest$' -fuzztime 5s
go test ./internal/obs -run '^$' -fuzz 'FuzzSegIndex$' -fuzztime 5s
go test ./internal/obs/query -run '^$' -fuzz 'FuzzParseBreaks$' -fuzztime 5s
go test ./internal/obs/query -run '^$' -fuzz 'FuzzParseQuery$' -fuzztime 5s

# Recorder-overhead gates: a short run of the throughput benchmarks must keep
# the recorder's cost within 10% of the unobserved fast path (the flat
# zero-allocation hot path is what this buys) and the rewind checkpoint grid
# within 2% of the plain observed run. The indexed query engine must answer a
# narrow query at least 10x faster than a full scan of the same spill, and
# verifying every segment checksum on the spill read path must cost no more
# than 2% over a checksum-skipping load.
go test -run '^$' \
  -bench 'SimThroughput/(Simulate$|SimulateObserved$|SimulateCheckpointed$)|QuerySpill|SpillLoad$' \
  -benchmem -benchtime 40x -count 3 . \
  | go run ./cmd/benchjson \
      -gate 'observe-overhead-pct<=10' \
      -gate 'checkpoint-overhead-pct<=2' \
      -gate 'query-speedup-x>=10' \
      -gate 'scrub-verify-overhead-pct<=2' > /dev/null

# Observability artifacts: a real workload's timeline, metrics series, stall
# attribution, pprof profile, and NDJSON spill must all validate, round-trip
# byte-identically through their codecs (the spill replay is cross-checked
# against the buffered timeline), and the -json run report must parse as a
# single JSON document.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
go run ./cmd/oclprof -workload chanstall -log=false -sample-every 500 \
  -timeline "$TMP/t.json" -metrics "$TMP/m.json" \
  -attr "$TMP/attr.json" -pprof "$TMP/attr.pb.gz" -spill "$TMP/spill.ndjson" \
  -spill-dir "$TMP/segs" -seg-lines 64 \
  -json > "$TMP/report.json"
go run ./cmd/obscheck -timeline "$TMP/t.json" -metrics "$TMP/m.json" \
  -report "$TMP/report.json" \
  -attr "$TMP/attr.json" -pprof "$TMP/attr.pb.gz" -spill "$TMP/spill.ndjson" \
  -spill-dir "$TMP/segs"
go run ./cmd/benchjson < /dev/null > /dev/null  # benchjson stays runnable

# Time-travel smoke (DESIGN.md §14): a checkpointed spill, then (1) the
# at-cycle state dump must be byte-identical whether re-execution rewinds
# from a spill checkpoint, rides the -checkpoint-every grid, or replays from
# cycle 0; (2) a breakpointed re-execution must halt on the stalled consumer;
# (3) an indexed query must answer byte-identically before and after the
# sidecar indexes are deleted and rebuilt; (4) mutually-exclusive debug modes
# must exit 2 (a built binary, because `go run` collapses exit codes).
go build -o "$TMP/oclprof" ./cmd/oclprof
"$TMP/oclprof" -workload chanstall -log=false \
  -spill-dir "$TMP/tt-segs" -seg-lines 64 -checkpoint-every 512
"$TMP/oclprof" -workload chanstall -log=false \
  -at-cycle 1500 -spill-dir "$TMP/tt-segs" > "$TMP/at-rewind.json" 2> /dev/null
"$TMP/oclprof" -workload chanstall -log=false \
  -at-cycle 1500 -checkpoint-every 512 > "$TMP/at-grid.json" 2> /dev/null
"$TMP/oclprof" -workload chanstall -log=false \
  -at-cycle 1500 > "$TMP/at-direct.json" 2> /dev/null
cmp "$TMP/at-rewind.json" "$TMP/at-direct.json"
cmp "$TMP/at-grid.json" "$TMP/at-direct.json"
"$TMP/oclprof" -workload chanstall -log=false \
  -break 'chan:pipe.stall>50' > "$TMP/break.json" 2> /dev/null
grep -q '"unit": "consumer"' "$TMP/break.json"
"$TMP/oclprof" -query 'kind=chan-stall cycles=[5000,6000]' \
  -spill-dir "$TMP/tt-segs" > "$TMP/q-sealed.json" 2> /dev/null
go run ./cmd/obscheck -spill-dir "$TMP/tt-segs" | grep -q 'sealed'
rm "$TMP/tt-segs"/*.idx.json "$TMP/tt-segs"/*.flat
go run ./cmd/obscheck -index "$TMP/tt-segs" | grep -q 'index ok'
"$TMP/oclprof" -query 'kind=chan-stall cycles=[5000,6000]' \
  -spill-dir "$TMP/tt-segs" > "$TMP/q-rebuilt.json" 2> /dev/null
cmp "$TMP/q-sealed.json" "$TMP/q-rebuilt.json"
RC=0
"$TMP/oclprof" -at-cycle 10 -break 'cycle=5' -workload chanstall -log=false > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ]
RC=0
"$TMP/oclprof" -at-cycle 10 -timeline /dev/null -workload chanstall -log=false > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ]
RC=0
"$TMP/oclprof" -query 'kind=exec' -workload chanstall -log=false > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ]

# Differential profiling smoke (DESIGN.md §15): a self-diff of two runs of the
# same deterministic workload must be neutral (exit 0), byte-stable across
# invocations, and round-trip through obscheck -diff; the indexed spill diff
# of the two spill directories above must agree. Diff misuse exits 2.
go run ./cmd/oclprof -workload chanstall -log=false -attr "$TMP/attr2.json" > /dev/null
"$TMP/oclprof" -diff "$TMP/attr.json" "$TMP/attr2.json" > "$TMP/diff.json" 2> /dev/null
"$TMP/oclprof" -diff "$TMP/attr.json" "$TMP/attr2.json" > "$TMP/diff-again.json" 2> /dev/null
cmp "$TMP/diff.json" "$TMP/diff-again.json"
go run ./cmd/obscheck -diff "$TMP/diff.json" | grep -q 'verdict neutral'
"$TMP/oclprof" -diff-spill "$TMP/segs" "$TMP/tt-segs" > "$TMP/diff-spill.json" 2> /dev/null
go run ./cmd/obscheck -diff "$TMP/diff-spill.json" | grep -q 'verdict neutral'
RC=0
"$TMP/oclprof" -diff "$TMP/attr.json" > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ]
RC=0
"$TMP/oclprof" -diff -spill-dir "$TMP/segs" "$TMP/attr.json" "$TMP/attr2.json" > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ]

# Self-healing smoke (DESIGN.md §16): rot the chanstall spill from the
# artifact run — one flipped byte in a sealed segment — and let oclprof -scrub
# heal it by re-executing the workload from the manifest's Meta recipe. The
# verdict must be healthy, the segment byte-identical to before the damage,
# and a scan-only fsck must agree.
PSEG="$(ls "$TMP/segs"/seg-*.ndjson | sort | head -1)"
cp "$PSEG" "$TMP/pseg-clean.ndjson"
dd if=/dev/zero of="$PSEG" bs=1 seek=33 count=1 conv=notrunc 2> /dev/null
go build -o "$TMP/obscheck" ./cmd/obscheck
RC=0
"$TMP/obscheck" -q -fsck "$TMP/segs" || RC=$?  # scan-only: damage classified
[ "$RC" -eq 1 ]
"$TMP/oclprof" -scrub -spill-dir "$TMP/segs" > "$TMP/scrub.json"
grep -q '"healthy": true' "$TMP/scrub.json"
cmp "$PSEG" "$TMP/pseg-clean.ndjson"
"$TMP/obscheck" -q -fsck "$TMP/segs"

# The indexed spill diff must beat a full replay of both spills by at least
# 5x (the segment indexes prune attribution-free segments on both sides).
go test -run '^$' -bench 'DiffSpill' -benchtime 5x -count 1 . \
  | go run ./cmd/benchjson -gate 'diff-spill-speedup-x>=5' > /dev/null

# oclmon smoke test: serve one small run on an ephemeral port, scrape
# /metrics, assert a known gauge, and shut the server down cleanly.
go build -o "$TMP/oclmon" ./cmd/oclmon
"$TMP/oclmon" -addr localhost:0 -runs 1 -n 2048 2> "$TMP/oclmon.log" &
OCLMON_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(grep -o 'http://[0-9.:]*' "$TMP/oclmon.log" || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$TMP/oclmon.log"; exit 1; }
curl -fsS "$ADDR/metrics" > "$TMP/metrics.txt"
grep -q '^oclmon_runs 1$' "$TMP/metrics.txt"
grep -q '^oclmon_cycles{' "$TMP/metrics.txt"
curl -fsS "$ADDR/" > /dev/null
kill "$OCLMON_PID"
wait "$OCLMON_PID" || true

# oclmon kill-and-recover smoke: start a long run with a durable spill,
# SIGKILL the server mid-run, and restart it on the same directory. The
# crashed run must be re-executed deterministically to completion, and the
# stitched spill must replay byte-identically to the timeline the recovered
# server serves.
SPILL="$TMP/mon-spill"
"$TMP/oclmon" -addr localhost:0 -runs 1 -n 65536 \
  -spill-dir "$SPILL" -seg-lines 1024 2> "$TMP/oclmon-crash.log" &
OCLMON_PID=$!
for _ in $(seq 1 100); do
    ls "$SPILL"/run1/seg-*.ndjson > /dev/null 2>&1 && break
    sleep 0.1
done
ls "$SPILL"/run1/seg-*.ndjson > /dev/null  # at least one sealed segment
kill -9 "$OCLMON_PID"
wait "$OCLMON_PID" || true
! grep -q '"complete": true' "$SPILL/run1/manifest.json"  # crashed mid-run

"$TMP/oclmon" -addr localhost:0 -runs 0 \
  -spill-dir "$SPILL" -seg-lines 1024 2> "$TMP/oclmon-recover.log" &
OCLMON_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(grep -o 'http://[0-9.:]*' "$TMP/oclmon-recover.log" || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$TMP/oclmon-recover.log"; exit 1; }
grep -q 're-executing crashed run run1' "$TMP/oclmon-recover.log"
DONE=""
for _ in $(seq 1 300); do
    curl -fsS "$ADDR/metrics" > "$TMP/metrics-recover.txt"
    if grep -q '^oclmon_run_done{run="run1"} 1$' "$TMP/metrics-recover.txt"; then
        DONE=1
        break
    fi
    sleep 0.2
done
[ -n "$DONE" ] || { cat "$TMP/oclmon-recover.log"; exit 1; }
grep -q '^oclmon_runs_completed_total 1$' "$TMP/metrics-recover.txt"
curl -fsS "$ADDR/runs" | grep -q '"recovered": *true'
curl -fsS "$ADDR/runs/run1/timeline.json" > "$TMP/t-recovered.json"
kill "$OCLMON_PID"
wait "$OCLMON_PID" || true
grep -q '"complete": true' "$SPILL/run1/manifest.json"  # recovery committed
go run ./cmd/obscheck -spill-dir "$SPILL/run1" -timeline "$TMP/t-recovered.json"

# Disk-fault chaos smoke (DESIGN.md §16): rot the recovered run's spill at
# rest — a flipped byte in a sealed segment, a deleted sidecar, torn commit
# debris — and reboot the server on the directory. The boot scrub must repair
# the segment by deterministic re-execution, byte-identically, and report no
# quarantine; obscheck -fsck then certifies the healed directory, and its
# report is the CI artifact (FSCK_OUT, default $TMP).
FSCK_OUT="${FSCK_OUT:-$TMP}"
mkdir -p "$FSCK_OUT"
MSEG="$(ls "$SPILL"/run1/seg-*.ndjson | sort | head -1)"
cp "$MSEG" "$TMP/mseg-clean.ndjson"
dd if=/dev/zero of="$MSEG" bs=1 seek=42 count=1 conv=notrunc 2> /dev/null
rm "${MSEG%.ndjson}.idx.json" "${MSEG%.ndjson}.flat"
printf '{torn' > "$SPILL/run1/manifest.json.tmp"
RC=0
"$TMP/obscheck" -q -fsck "$SPILL/run1" || RC=$?  # scan-only: damage classified
[ "$RC" -eq 1 ]
"$TMP/oclmon" -addr localhost:0 -runs 0 \
  -spill-dir "$SPILL" -seg-lines 1024 2> "$TMP/oclmon-scrub.log" &
OCLMON_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR="$(grep -o 'http://[0-9.:]*' "$TMP/oclmon-scrub.log" || true)"
    [ -n "$ADDR" ] && break
    sleep 0.2
done
[ -n "$ADDR" ] || { cat "$TMP/oclmon-scrub.log"; exit 1; }
grep -q 'boot scrub repaired' "$TMP/oclmon-scrub.log"
curl -fsS "$ADDR/metrics" > "$TMP/metrics-scrub.txt"
grep -q '^oclmon_runs_quarantined 0$' "$TMP/metrics-scrub.txt"
grep -q '^oclmon_spill_bytes ' "$TMP/metrics-scrub.txt"
curl -fsS "$ADDR/runs" | grep -q '"done": *true'
kill "$OCLMON_PID"
wait "$OCLMON_PID" || true
cmp "$MSEG" "$TMP/mseg-clean.ndjson"  # re-executed segment byte-identical
"$TMP/obscheck" -fsck "$SPILL/run1" -fsck-report "$FSCK_OUT/fsck-report.json" \
  | grep -q 'fsck healthy'
grep -q '"healthy": true' "$FSCK_OUT/fsck-report.json"

# Fleet smoke: a two-worker fleet, one long run, SIGKILL the owning worker
# through the chaos endpoint. The survivor must steal the spill lease and
# replay-recover the run to completion, and the timeline the fleet serves
# afterwards must byte-match a replay of the stitched spill.
FSPILL="$TMP/fleet-spill"
"$TMP/oclmon" -addr localhost:0 -runs 0 -workers 2 \
  -spill-dir "$FSPILL" -seg-lines 256 2> "$TMP/fleet.log" &
FLEET_PID=$!
FADDR=""
for _ in $(seq 1 100); do
    FADDR="$(grep 'fleet front end listening' "$TMP/fleet.log" | grep -o 'http://[0-9.:]*' || true)"
    [ -n "$FADDR" ] && break
    sleep 0.1
done
[ -n "$FADDR" ] || { cat "$TMP/fleet.log"; exit 1; }
curl -fsS "$FADDR/readyz" | grep -q 'ready: 2/2'
curl -fsS -X POST "$FADDR/runs?n=60000" > "$TMP/admit.json"
RUN_ID="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$TMP/admit.json")"
RUN_WORKER="$(sed -n 's/.*"worker":"\([^"]*\)".*/\1/p' "$TMP/admit.json")"
[ -n "$RUN_ID" ] && [ -n "$RUN_WORKER" ]
for _ in $(seq 1 200); do
    ls "$FSPILL/$RUN_WORKER/$RUN_ID"/seg-*.ndjson > /dev/null 2>&1 && break
    sleep 0.1
done
ls "$FSPILL/$RUN_WORKER/$RUN_ID"/seg-*.ndjson > /dev/null
curl -fsS -X POST "$FADDR/fleet/kill?worker=$RUN_WORKER" > /dev/null
! grep -q '"complete": true' "$FSPILL/$RUN_WORKER/$RUN_ID/manifest.json"  # killed mid-run
FLEET_DONE=""
for _ in $(seq 1 600); do
    if curl -fsS "$FADDR/runs" > "$TMP/fleet-runs.json" 2>/dev/null \
       && grep -q '"done": *true' "$TMP/fleet-runs.json" \
       && grep -q '"recovered": *true' "$TMP/fleet-runs.json"; then
        FLEET_DONE=1
        break
    fi
    sleep 0.2
done
[ -n "$FLEET_DONE" ] || { cat "$TMP/fleet.log"; exit 1; }
grep -q 'adopted' "$TMP/fleet.log"  # the handoff actually ran
curl -fsS "$FADDR/runs/$RUN_ID/timeline.json" > "$TMP/t-fleet.json"
curl -fsS "$FADDR/metrics" | grep -q '^oclmon_takeovers_total 1$'
kill "$FLEET_PID"
wait "$FLEET_PID" || true
go run ./cmd/obscheck -spill-dir "$FSPILL/$RUN_WORKER/$RUN_ID" -timeline "$TMP/t-fleet.json"

# Load/chaos harness smoke: a short storm with a mid-storm kill must drive
# every admitted run to completion, and its report must clear the benchjson
# fleet gates (admission latency, full completion, bounded recovery).
go build -o "$TMP/oclstorm" ./cmd/oclstorm
"$TMP/oclstorm" -oclmon "$TMP/oclmon" -workers 2 -runs 12 -clients 6 -n 2000 \
  -kill-after 1s -timeout 120s -out "$TMP/storm.json" 2> "$TMP/storm.log" \
  || { cat "$TMP/storm.log"; exit 1; }
go run ./cmd/benchjson -fleet "$TMP/storm.json" \
  -gate 'fleet-runs-completed>=12' \
  -gate 'fleet-recovery-ms<=60000' \
  -gate 'fleet-admit-p99-ms<=5000' < /dev/null > /dev/null
