#!/bin/sh
# verify.sh — the full pre-merge gate: static checks, a clean build, and the
# race-enabled test suite (the simulator is single-goroutine by design, but
# the host controller and examples are exercised under the detector anyway).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
