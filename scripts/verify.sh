#!/bin/sh
# verify.sh — the full pre-merge gate: static checks, a clean build, and the
# race-enabled test suite (the simulator is single-goroutine by design, but
# the host controller and examples are exercised under the detector anyway).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Observability artifacts: a real workload's timeline, metrics series, stall
# attribution, pprof profile, and NDJSON spill must all validate, round-trip
# byte-identically through their codecs (the spill replay is cross-checked
# against the buffered timeline), and the -json run report must parse as a
# single JSON document.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
go run ./cmd/oclprof -workload chanstall -log=false -sample-every 500 \
  -timeline "$TMP/t.json" -metrics "$TMP/m.json" \
  -attr "$TMP/attr.json" -pprof "$TMP/attr.pb.gz" -spill "$TMP/spill.ndjson" \
  -json > "$TMP/report.json"
go run ./cmd/obscheck -timeline "$TMP/t.json" -metrics "$TMP/m.json" \
  -report "$TMP/report.json" \
  -attr "$TMP/attr.json" -pprof "$TMP/attr.pb.gz" -spill "$TMP/spill.ndjson"
go run ./cmd/benchjson < /dev/null > /dev/null  # benchjson stays runnable

# oclmon smoke test: serve one small run on an ephemeral port, scrape
# /metrics, assert a known gauge, and shut the server down cleanly.
go build -o "$TMP/oclmon" ./cmd/oclmon
"$TMP/oclmon" -addr localhost:0 -runs 1 -n 2048 2> "$TMP/oclmon.log" &
OCLMON_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(grep -o 'http://[0-9.:]*' "$TMP/oclmon.log" || true)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$TMP/oclmon.log"; exit 1; }
curl -fsS "$ADDR/metrics" > "$TMP/metrics.txt"
grep -q '^oclmon_runs 1$' "$TMP/metrics.txt"
grep -q '^oclmon_cycles{' "$TMP/metrics.txt"
curl -fsS "$ADDR/" > /dev/null
kill "$OCLMON_PID"
wait "$OCLMON_PID" || true
