#!/bin/sh
# verify.sh — the full pre-merge gate: static checks, a clean build, and the
# race-enabled test suite (the simulator is single-goroutine by design, but
# the host controller and examples are exercised under the detector anyway).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Observability artifacts: a real workload's timeline and metrics series must
# be valid, Perfetto-loadable JSON that round-trips byte-identically through
# the codec, and the -json run report must parse as a single JSON document.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
go run ./cmd/oclprof -workload chanstall -log=false -sample-every 500 \
  -timeline "$TMP/t.json" -metrics "$TMP/m.json" -json > "$TMP/report.json"
go run ./cmd/obscheck -timeline "$TMP/t.json" -metrics "$TMP/m.json" -report "$TMP/report.json"
go run ./cmd/benchjson < /dev/null > /dev/null  # benchjson stays runnable
