GO ?= go

.PHONY: build test test-short verify vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# skips the deep difftest soaks (hundreds of random programs / fault plans)
test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

verify:
	./scripts/verify.sh
