package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"oclfpga/internal/experiments"
	"oclfpga/internal/obs"
)

// TestMain builds obscheck plus the oclprof that produces its inputs; the
// tests then run the real validation pipeline end to end: artifacts from one
// binary gated by the other, exit codes asserted on both the accept and
// reject paths.

var (
	obscheckBin string
	oclprofBin  string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "obscheck-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	obscheckBin = filepath.Join(dir, "obscheck")
	oclprofBin = filepath.Join(dir, "oclprof")
	for bin, pkg := range map[string]string{obscheckBin: ".", oclprofBin: "../oclprof"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "build %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runCmd(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatal(err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// artifacts produces one full set of observability files via oclprof.
func artifacts(t *testing.T) (tl, metrics, attr, pprof, spill string) {
	t.Helper()
	dir := t.TempDir()
	tl = filepath.Join(dir, "tl.json")
	metrics = filepath.Join(dir, "m.json")
	attr = filepath.Join(dir, "attr.json")
	pprof = filepath.Join(dir, "attr.pb.gz")
	spill = filepath.Join(dir, "spill.ndjson")
	_, stderr, code := runCmd(t, oclprofBin,
		"-workload", "chanstall", "-log=false", "-sample-every", "500",
		"-timeline", tl, "-metrics", metrics, "-attr", attr, "-pprof", pprof, "-spill", spill)
	if code != 0 {
		t.Fatalf("oclprof exit %d\n%s", code, stderr)
	}
	return
}

func TestAcceptsValidArtifacts(t *testing.T) {
	tl, metrics, attr, pprof, spill := artifacts(t)
	stdout, stderr, code := runCmd(t, obscheckBin,
		"-timeline", tl, "-metrics", metrics, "-attr", attr, "-pprof", pprof, "-spill", spill)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, f := range []string{tl, metrics, attr, pprof, spill} {
		if !bytes.Contains([]byte(stdout), []byte(f+": ok")) {
			t.Errorf("no ok line for %s:\n%s", f, stdout)
		}
	}
	// the spill summary must confirm byte-identity against the timeline file
	if !bytes.Contains([]byte(stdout), []byte("byte-identical")) {
		t.Errorf("spill replay not cross-checked against -timeline:\n%s", stdout)
	}
}

func TestQuietSuppressesSummaries(t *testing.T) {
	tl, _, _, _, _ := artifacts(t)
	stdout, _, code := runCmd(t, obscheckBin, "-q", "-timeline", tl)
	if code != 0 || stdout != "" {
		t.Fatalf("exit %d, stdout %q", code, stdout)
	}
}

func TestRejectsCorruptedTimeline(t *testing.T) {
	tl, _, _, _, _ := artifacts(t)
	raw, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	// flip a span's duration: the validators or the byte-stability re-encode
	// must catch it
	bad := bytes.Replace(raw, []byte(`"dur"`), []byte(`"Dur"`), 1)
	if bytes.Equal(bad, raw) {
		t.Fatal("corruption had no effect")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runCmd(t, obscheckBin, "-timeline", badPath); code == 0 {
		t.Fatal("corrupted timeline accepted")
	}
}

func TestRejectsTruncatedSpill(t *testing.T) {
	_, _, _, _, spill := artifacts(t)
	raw, err := os.ReadFile(spill)
	if err != nil {
		t.Fatal(err)
	}
	trunc := raw[:len(raw)/2]
	badPath := filepath.Join(t.TempDir(), "trunc.ndjson")
	if err := os.WriteFile(badPath, trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runCmd(t, obscheckBin, "-spill", badPath); code == 0 {
		t.Fatal("truncated spill accepted")
	}
}

func TestNothingToCheckExitsTwo(t *testing.T) {
	if _, _, code := runCmd(t, obscheckBin); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// spillDir builds a small segmented simbench spill in-process — the manifest
// carries the workload Meta that lets -fsck -repair re-execute it.
func spillDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := experiments.SpillSimBench(64, dir, 256, 4096, 32); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSpillDirPrintsIntegrity(t *testing.T) {
	dir := spillDir(t)
	stdout, stderr, code := runCmd(t, obscheckBin, "-spill-dir", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("checksum ok")) ||
		!bytes.Contains([]byte(stdout), []byte("sidecar ok")) {
		t.Fatalf("no per-segment integrity rows:\n%s", stdout)
	}
}

func TestFsckHealthySpill(t *testing.T) {
	dir := spillDir(t)
	stdout, stderr, code := runCmd(t, obscheckBin, "-fsck", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("fsck healthy")) {
		t.Fatalf("no healthy verdict:\n%s", stdout)
	}
}

func TestFsckDetectsDamageAndRepairs(t *testing.T) {
	dir := spillDir(t)
	man, err := obs.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, man.Segments[0].File)
	clean, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.FlipByte(first, 30); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "seg-000001.idx.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json.tmp"), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	// Scan-only: damage classified, exit 1, nothing modified.
	stdout, _, code := runCmd(t, obscheckBin, "-fsck", dir)
	if code != 1 {
		t.Fatalf("fsck of damaged dir exited %d\n%s", code, stdout)
	}
	if !bytes.Contains([]byte(stdout), []byte("bit-rot")) ||
		!bytes.Contains([]byte(stdout), []byte("torn-rename")) {
		t.Fatalf("damage not classified:\n%s", stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json.tmp")); err != nil {
		t.Fatal("scan-only fsck modified the directory")
	}

	// Repair: re-executes the workload from manifest Meta, byte-identical.
	report := filepath.Join(t.TempDir(), "fsck.json")
	stdout, stderr, code := runCmd(t, obscheckBin, "-fsck", dir, "-repair", "-fsck-report", report)
	if code != 0 {
		t.Fatalf("repair exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	got, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, got) {
		t.Fatal("repaired segment is not byte-identical to the clean one")
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Healthy bool `json:"healthy"`
		Repair  *struct {
			RemovedOrphans []string `json:"removedOrphans"`
		} `json:"repair"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("fsck report is not JSON: %v\n%s", err, raw)
	}
	if !rep.Healthy || rep.Repair == nil || len(rep.Repair.RemovedOrphans) == 0 {
		t.Fatalf("fsck report does not record the repair: %s", raw)
	}
	if _, _, code := runCmd(t, obscheckBin, "-q", "-fsck", dir); code != 0 {
		t.Fatal("rescan after repair not clean")
	}
}
