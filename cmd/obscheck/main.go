// Command obscheck validates observability artifacts produced by oclprof:
// it parses a timeline (Perfetto trace_event JSON) and/or a metrics series,
// runs the structural validators, re-encodes each document, and checks the
// round trip is byte-identical — the codec contract scripts/verify.sh gates
// on. Exit status 0 means every given file is valid and stable.
//
// -fsck runs the durability scrubber over a segmented spill directory:
// every sealed segment's fingerprint is verified, commit debris and sidecar
// staleness are classified, and with -repair the recoverable damage is fixed
// in place — byte-identically, via deterministic re-execution when the
// manifest records a known workload. Exit status 1 means damage remains.
//
//	go run ./cmd/obscheck -timeline t.json -metrics m.json
//	go run ./cmd/obscheck -fsck spill/ -repair -fsck-report fsck.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"oclfpga/internal/experiments"
	"oclfpga/internal/obs"
	"oclfpga/internal/obs/analyze"
	"oclfpga/internal/obs/diff"
	"oclfpga/internal/obs/scrub"
)

var (
	flagTimeline = flag.String("timeline", "", "timeline file to validate")
	flagMetrics  = flag.String("metrics", "", "metrics-series file to validate")
	flagReport   = flag.String("report", "", "oclprof -json run report to validate (must be one JSON document)")
	flagAttr     = flag.String("attr", "", "stall-attribution file (oclprof -attr) to validate")
	flagPprof    = flag.String("pprof", "", "pprof stall profile (oclprof -pprof) to validate")
	flagDiff     = flag.String("diff", "", "diff report (oclprof -diff) to validate")
	flagSpill    = flag.String("spill", "", "NDJSON spill stream (oclprof -spill) to replay and validate")
	flagSpillDir = flag.String("spill-dir", "", "segmented spill directory (oclprof -spill-dir / oclmon) to stitch, replay, and validate")
	flagIndex    = flag.String("index", "", "build or repair the per-segment index sidecars (.idx.json + .flat) for this spill directory")
	flagFsck     = flag.String("fsck", "", "scrub this spill directory: verify every fingerprint, classify damage, exit 1 if any")
	flagRepair   = flag.Bool("repair", false, "with -fsck: repair what the scrubber can (orphans, sidecars, re-executable segments)")
	flagFsckOut  = flag.String("fsck-report", "", "with -fsck: write the machine-readable scrub report (JSON) to this file")
	flagQuiet    = flag.Bool("q", false, "suppress the per-file summary lines")
)

func main() {
	flag.Parse()
	if *flagTimeline == "" && *flagMetrics == "" && *flagReport == "" &&
		*flagAttr == "" && *flagPprof == "" && *flagDiff == "" &&
		*flagSpill == "" && *flagSpillDir == "" && *flagIndex == "" && *flagFsck == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (pass -timeline, -metrics, -report, -attr, -pprof, -diff, -spill, -spill-dir, -index, and/or -fsck)")
		flag.Usage()
		os.Exit(2)
	}
	if *flagTimeline != "" {
		checkFile(*flagTimeline, checkTimeline)
	}
	if *flagMetrics != "" {
		checkFile(*flagMetrics, checkSeries)
	}
	if *flagReport != "" {
		checkFile(*flagReport, checkReport)
	}
	if *flagAttr != "" {
		checkFile(*flagAttr, checkAttr)
	}
	if *flagPprof != "" {
		checkFile(*flagPprof, checkPprof)
	}
	if *flagDiff != "" {
		checkFile(*flagDiff, checkDiff)
	}
	if *flagSpill != "" {
		checkFile(*flagSpill, checkSpill)
	}
	if *flagSpillDir != "" {
		summary, err := checkSpillDir(*flagSpillDir)
		if err != nil {
			log.Fatalf("%s: %v", *flagSpillDir, err)
		}
		if !*flagQuiet {
			fmt.Printf("%s: ok (%s)\n", *flagSpillDir, summary)
		}
	}
	if *flagIndex != "" {
		n, err := obs.EnsureIndex(*flagIndex)
		if err != nil {
			log.Fatalf("%s: index: %v", *flagIndex, err)
		}
		if !*flagQuiet {
			fmt.Printf("%s: index ok (%d sidecars rebuilt)\n", *flagIndex, n)
		}
	}
	if *flagFsck != "" {
		if !fsck(*flagFsck, *flagRepair, *flagFsckOut) {
			os.Exit(1)
		}
	}
}

// rebuildFor resolves the deterministic re-execution hook for a spill from
// the workload its manifest recorded. Unknown workloads get no hook: fsck
// still performs every derived repair, and segment-body damage is reported
// as needing re-execution by a caller that owns the workload.
func rebuildFor(man *obs.Manifest) scrub.Rebuild {
	if man != nil && man.Meta["workload"] == "simbench" {
		return experiments.SimBenchRebuild
	}
	return nil
}

// fsckReport is the machine-readable scrub verdict -fsck-report emits — the
// artifact CI uploads from the disk-chaos smoke.
type fsckReport struct {
	Dir     string        `json:"dir"`
	Scan    *scrub.Report `json:"scan"`
	Repair  *scrub.Result `json:"repair,omitempty"`
	Healthy bool          `json:"healthy"`
	Time    string        `json:"time"`
}

// fsck scans (and with repair=true, heals) one spill directory, printing a
// classified verdict per finding. Returns true when the directory ends
// healthy.
func fsck(dir string, repair bool, reportOut string) bool {
	rep, err := scrub.Scan(dir)
	if err != nil {
		log.Fatalf("%s: fsck: %v", dir, err)
	}
	out := fsckReport{Dir: dir, Scan: rep, Time: time.Now().UTC().Format(time.RFC3339)}
	if !*flagQuiet {
		for _, c := range rep.Segments {
			state := "sealed"
			if c.Err != nil {
				state = "DAMAGED"
			}
			fmt.Printf("  %s: checksum %s, sidecar %s, %d lines (%d events, %d samples), %s\n",
				c.File, c.ChecksumState, c.SidecarState, c.Lines, c.Events, c.Samples, state)
		}
		for _, d := range rep.Damage {
			fmt.Printf("  !! %s: %s (%s) — repair: %s\n", d.File, d.Kind, d.Detail, d.Repair)
		}
		for _, w := range rep.Warnings {
			fmt.Printf("  -- %s: %s (%s) — handled by recovery\n", w.File, w.Kind, w.Detail)
		}
		if rep.Quarantined != nil {
			fmt.Printf("  !! quarantined: %s\n", rep.Quarantined.Reason)
		}
	}
	healthy, remaining := rep.Healthy, rep.Damage
	if repair && !healthy {
		res, err := scrub.Repair(dir, rebuildFor(rep.Manifest))
		if res != nil {
			out.Repair = res
			remaining = res.Remaining
		}
		if err != nil {
			fmt.Printf("%s: fsck: repair: %v\n", dir, err)
		} else {
			healthy = res.Healthy
			if !*flagQuiet {
				fmt.Printf("  repaired: %d orphans removed, %d sidecars rebuilt, %d segments re-executed\n",
					len(res.RemovedOrphans), res.RebuiltSidecars, len(res.Repaired))
			}
		}
	}
	out.Healthy = healthy
	if reportOut != "" {
		buf, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			log.Fatalf("%s: fsck: report: %v", dir, err)
		}
		if err := os.WriteFile(reportOut, append(buf, '\n'), 0o666); err != nil {
			log.Fatalf("%s: fsck: report: %v", dir, err)
		}
	}
	if !*flagQuiet {
		verdict := "healthy"
		if !healthy {
			verdict = fmt.Sprintf("UNHEALTHY (%d findings)", len(remaining))
		}
		fmt.Printf("%s: fsck %s (%d segments, %d warnings)\n", dir, verdict, len(rep.Segments), len(rep.Warnings))
	}
	return healthy
}

// segmentStats prints one integrity row per manifest segment — fingerprint
// verdict (ok / bad / unverified for pre-checksum manifests), sidecar
// freshness, record counts, cycle range — plus any unsealed .part files
// recovery would ignore. Verification reads the segment end to end; nothing
// is written.
func segmentStats(dir string, man *obs.Manifest) {
	for i, seg := range man.Segments {
		c := obs.CheckSegment(dir, man, i)
		cycles := ""
		if idx, err := obs.LoadSegIndex(dir, seg); err == nil && idx.FirstCycle >= 0 {
			cycles = fmt.Sprintf(", cycles [%d,%d]", idx.FirstCycle, idx.LastCycle)
		}
		fmt.Printf("  %s: checksum %s, sidecar %s, %d lines (%d events, %d samples), %d bytes%s, sealed\n",
			c.File, c.ChecksumState, c.SidecarState, c.Lines, c.Events, c.Samples, seg.Bytes, cycles)
		if c.Err != nil {
			fmt.Printf("    !! %v\n", c.Err)
		}
	}
	parts, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson.part"))
	for _, p := range parts {
		st, err := os.Stat(p)
		if err != nil {
			continue
		}
		fmt.Printf("  %s: %d bytes, unsealed (.part — salvaged by recovery, never trusted)\n", filepath.Base(p), st.Size())
	}
}

// checkSpillDir loads a segmented spill, requires the manifest to mark a
// complete record, replays the stitched stream through a fresh recorder, and
// validates what it rebuilds. With -timeline given alongside, the replayed
// timeline's serialization must equal that file byte for byte — the same
// equivalence contract as -spill, across segment boundaries and the
// crash-recovery path that wrote them.
func checkSpillDir(dir string) (string, error) {
	man, err := obs.LoadManifest(dir)
	if err != nil {
		return "", err
	}
	if !*flagQuiet {
		// per-segment integrity first: it is what a damaged spill leaves to read
		segmentStats(dir, man)
	}
	slog, err := obs.LoadSegments(dir)
	if err != nil {
		return "", err
	}
	if !slog.Manifest.Complete {
		return "", fmt.Errorf("manifest does not mark a complete record (run crashed before finalize?)")
	}
	tl, series, err := slog.Replay()
	if err != nil {
		return "", err
	}
	if err := tl.Validate(); err != nil {
		return "", err
	}
	if err := series.Validate(); err != nil {
		return "", err
	}
	var re bytes.Buffer
	if err := obs.WriteTimeline(&re, tl); err != nil {
		return "", err
	}
	if *flagTimeline != "" {
		want, err := os.ReadFile(*flagTimeline)
		if err != nil {
			return "", err
		}
		if !bytes.Equal(want, re.Bytes()) {
			return "", fmt.Errorf("stitched timeline differs from %s (%d vs %d bytes)",
				*flagTimeline, len(re.Bytes()), len(want))
		}
		return fmt.Sprintf("%d segments, %d lines stitched, byte-identical to %s",
			len(slog.Manifest.Segments), len(slog.Lines), *flagTimeline), nil
	}
	return fmt.Sprintf("%d segments, %d lines stitched, end cycle %d",
		len(slog.Manifest.Segments), len(slog.Lines), slog.Manifest.EndCycle), nil
}

func checkFile(path string, check func([]byte) (string, error)) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := check(raw)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if !*flagQuiet {
		fmt.Printf("%s: ok (%s)\n", path, summary)
	}
}

func checkTimeline(raw []byte) (string, error) {
	tl, err := obs.ReadTimeline(bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	if err := tl.Validate(); err != nil {
		return "", err
	}
	var re bytes.Buffer
	if err := obs.WriteTimeline(&re, tl); err != nil {
		return "", err
	}
	if !bytes.Equal(raw, re.Bytes()) {
		return "", fmt.Errorf("re-encoded timeline differs from input (%d vs %d bytes)", len(re.Bytes()), len(raw))
	}
	return fmt.Sprintf("%d events, %d ff-jumps, end cycle %d", len(tl.Events), len(tl.FFJumps), tl.EndCycle), nil
}

// checkReport accepts exactly one JSON value spanning the whole file — what
// oclprof -json promises on stdout.
func checkReport(raw []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	var v map[string]any
	if err := dec.Decode(&v); err != nil {
		return "", err
	}
	if dec.More() {
		return "", fmt.Errorf("trailing content after the first JSON document")
	}
	return fmt.Sprintf("%d top-level keys", len(v)), nil
}

func checkAttr(raw []byte) (string, error) {
	a, err := analyze.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	if err := a.Validate(); err != nil {
		return "", err
	}
	var re bytes.Buffer
	if err := analyze.WriteJSON(&re, a); err != nil {
		return "", err
	}
	if !bytes.Equal(raw, re.Bytes()) {
		return "", fmt.Errorf("re-encoded attribution differs from input (%d vs %d bytes)", len(re.Bytes()), len(raw))
	}
	return fmt.Sprintf("%d rows, %d stall cycles, critical path %d cycles",
		len(a.Rows), a.TotalStallCycles, a.CriticalCycles), nil
}

func checkDiff(raw []byte) (string, error) {
	r, err := diff.ReadReport(bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	if err := r.Validate(); err != nil {
		return "", err
	}
	var re bytes.Buffer
	if err := diff.WriteReport(&re, r); err != nil {
		return "", err
	}
	if !bytes.Equal(raw, re.Bytes()) {
		return "", fmt.Errorf("re-encoded diff report differs from input (%d vs %d bytes)", len(re.Bytes()), len(raw))
	}
	return fmt.Sprintf("%d rows, total stall delta %+d, verdict %s",
		len(r.Rows), r.TotalDelta, r.Verdict), nil
}

func checkPprof(raw []byte) (string, error) {
	sum, err := analyze.CheckPprof(raw)
	if err != nil {
		return "", err
	}
	return sum.String(), nil
}

// checkSpill replays the NDJSON stream through a fresh buffering recorder and
// validates what it rebuilds. With -timeline given alongside, the replayed
// timeline's serialization must equal that file byte for byte — the streaming
// path's equivalence contract.
func checkSpill(raw []byte) (string, error) {
	tl, series, err := obs.ReplayNDJSON(bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	if err := tl.Validate(); err != nil {
		return "", err
	}
	if err := series.Validate(); err != nil {
		return "", err
	}
	var re bytes.Buffer
	if err := obs.WriteTimeline(&re, tl); err != nil {
		return "", err
	}
	if *flagTimeline != "" {
		want, err := os.ReadFile(*flagTimeline)
		if err != nil {
			return "", err
		}
		if !bytes.Equal(want, re.Bytes()) {
			return "", fmt.Errorf("replayed timeline differs from %s (%d vs %d bytes)",
				*flagTimeline, len(re.Bytes()), len(want))
		}
		return fmt.Sprintf("%d events replayed, byte-identical to %s", len(tl.Events), *flagTimeline), nil
	}
	return fmt.Sprintf("%d events, %d samples replayed", len(tl.Events), len(series.Samples)), nil
}

func checkSeries(raw []byte) (string, error) {
	s, err := obs.ReadSeries(bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	if err := s.Validate(); err != nil {
		return "", err
	}
	var re bytes.Buffer
	if err := obs.WriteSeries(&re, s); err != nil {
		return "", err
	}
	if !bytes.Equal(raw, re.Bytes()) {
		return "", fmt.Errorf("re-encoded series differs from input (%d vs %d bytes)", len(re.Bytes()), len(raw))
	}
	return fmt.Sprintf("%d samples, every %d cycles", len(s.Samples), s.SampleEvery), nil
}
