// benchjson converts `go test -bench` output on stdin into a JSON document
// on stdout: one entry per benchmark name, each holding every recorded run
// (-count N yields N runs) with its ns/op and all custom metrics. scripts/
// bench.sh pipes through it to produce the repo's BENCH_*.json trajectory
// files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

type run map[string]float64

// fingerprint identifies the host a benchmark document was recorded on.
// Comparing numbers across different machines (or Go toolchains) is
// meaningless, so every document is stamped and -baseline warns on mismatch.
type fingerprint struct {
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpuModel,omitempty"`
}

type doc struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	Pkg        string           `json:"pkg,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Host       *fingerprint     `json:"host,omitempty"`
	Benchmarks map[string][]run `json:"benchmarks"`
	// Derived convenience metrics (e.g. fast-forward speedup) keyed by name.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// hostFingerprint stamps the current host. The CPU model comes from
// /proc/cpuinfo when readable (Linux); elsewhere the field is empty and the
// comparison falls back to toolchain + parallelism.
func hostFingerprint() *fingerprint {
	fp := &fingerprint{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if raw, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(raw), "\n") {
			if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
				fp.CPUModel = strings.TrimSpace(v)
				break
			}
		}
	}
	return fp
}

// checkBaseline compares the current host against the fingerprint of an
// earlier benchmark document. A mismatch is a warning, not an error: numbers
// still serialize, they just should not be read as a trajectory.
func checkBaseline(path string, cur *fingerprint) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", path, err)
		return
	}
	var base doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", path, err)
		return
	}
	switch {
	case base.Host == nil:
		fmt.Fprintf(os.Stderr, "benchjson: warning: baseline %s has no host fingerprint; comparison is unreliable\n", path)
	case *base.Host != *cur:
		fmt.Fprintf(os.Stderr, "benchjson: warning: baseline %s was recorded on a different host:\n  baseline: %s, GOMAXPROCS %d, %q\n  current:  %s, GOMAXPROCS %d, %q\n",
			path, base.Host.GoVersion, base.Host.GOMAXPROCS, base.Host.CPUModel,
			cur.GoVersion, cur.GOMAXPROCS, cur.CPUModel)
	}
}

var flagBaseline = flag.String("baseline", "", "earlier benchjson document to fingerprint-check against (warn on host mismatch)")

var flagDiff = flag.Bool("diff", false, "compare two benchjson documents (OLD.json NEW.json as arguments) and print a metric delta table instead of reading stdin")

var flagFleet = flag.String("fleet", "", "oclstorm report whose benchmarks and derived metrics merge into the output")

// gate is one "-gate name<=value" (or name>=value) assertion against the
// final derived-metric map. Gates make the bench pipeline a regression test:
// a missing metric or a violated bound fails the run.
type gate struct {
	name string
	op   string // "<=" or ">="
	val  float64
}

type gateList []gate

func (g *gateList) String() string { return fmt.Sprint(*g) }

func (g *gateList) Set(s string) error {
	for _, op := range []string{"<=", ">="} {
		if name, v, ok := strings.Cut(s, op); ok {
			val, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return fmt.Errorf("gate %q: %v", s, err)
			}
			*g = append(*g, gate{name: strings.TrimSpace(name), op: op, val: val})
			return nil
		}
	}
	return fmt.Errorf("gate %q: want name<=value or name>=value", s)
}

var flagGates gateList

// mergeFleet folds an oclstorm report into the document: its benchmark
// entries are appended and its derived metrics (fleet-admit-p99-ms,
// fleet-recovery-ms, ...) join the derived map, so one BENCH document carries
// both the micro-benchmarks and the fleet's measured behavior.
func mergeFleet(d *doc, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var fd doc
	if err := json.Unmarshal(raw, &fd); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	for name, rs := range fd.Benchmarks {
		d.Benchmarks[name] = append(d.Benchmarks[name], rs...)
	}
	if len(fd.Derived) > 0 && d.Derived == nil {
		d.Derived = map[string]float64{}
	}
	for name, v := range fd.Derived {
		d.Derived[name] = v
	}
	return nil
}

// readDoc loads one benchjson document from disk.
func readDoc(path string) (*doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &d, nil
}

// diffDocs is the -diff mode: a human-readable delta table between two
// benchjson documents — every benchmark's mean ns/op and every derived metric
// appearing in either, with the percent change. A host-fingerprint mismatch
// is warned inline at the top: the deltas still print, they just should not
// be read as a regression signal across different machines or toolchains.
func diffDocs(w io.Writer, oldPath, newPath string) error {
	od, err := readDoc(oldPath)
	if err != nil {
		return err
	}
	nd, err := readDoc(newPath)
	if err != nil {
		return err
	}
	switch {
	case od.Host == nil || nd.Host == nil:
		fmt.Fprintln(w, "! host fingerprint missing from one side; deltas may compare different machines")
	case *od.Host != *nd.Host:
		fmt.Fprintf(w, "! host mismatch: old %s/GOMAXPROCS %d/%q vs new %s/GOMAXPROCS %d/%q — deltas unreliable\n",
			od.Host.GoVersion, od.Host.GOMAXPROCS, od.Host.CPUModel,
			nd.Host.GoVersion, nd.Host.GOMAXPROCS, nd.Host.CPUModel)
	}

	cell := func(v float64, ok bool) string {
		if !ok {
			return "-"
		}
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\told\tnew\tchange\n")
	row := func(name string, ov float64, ook bool, nv float64, nok bool) {
		change := "-"
		if ook && nok && ov != 0 {
			change = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", name, cell(ov, ook), cell(nv, nok), change)
	}
	names := map[string]bool{}
	for n := range od.Benchmarks {
		names[n] = true
	}
	for n := range nd.Benchmarks {
		names[n] = true
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		ov := mean(od.Benchmarks[n], "ns/op")
		nv := mean(nd.Benchmarks[n], "ns/op")
		row(n+" ns/op", ov, ov > 0, nv, nv > 0)
	}
	names = map[string]bool{}
	for n := range od.Derived {
		names[n] = true
	}
	for n := range nd.Derived {
		names[n] = true
	}
	sorted = sorted[:0]
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		ov, ook := od.Derived[n]
		nv, nok := nd.Derived[n]
		row("derived:"+n, ov, ook, nv, nok)
	}
	return tw.Flush()
}

func main() {
	flag.Var(&flagGates, "gate", "derived-metric bound to enforce, e.g. 'fleet-recovery-ms<=15000' (repeatable; exit 1 on violation or missing metric)")
	flag.Parse()
	if *flagDiff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff takes exactly two arguments: OLD.json NEW.json")
			os.Exit(2)
		}
		if err := diffDocs(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	d := doc{Benchmarks: map[string][]run{}, Host: hostFingerprint()}
	if *flagBaseline != "" {
		checkBaseline(*flagBaseline, d.Host)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			d.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			d.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			d.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			d.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so counts aggregate under one name.
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := run{}
		if iters, err := strconv.ParseFloat(f[1], 64); err == nil {
			r["iterations"] = iters
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			r[f[i+1]] = v
		}
		d.Benchmarks[name] = append(d.Benchmarks[name], r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// The headline derived metrics: simulate-phase throughput with the
	// fast-forward path over the forced slow path, and the observability
	// recorder's throughput cost relative to the unobserved fast path.
	plainRuns := d.Benchmarks["BenchmarkSimThroughput/Simulate"]
	obsRuns := d.Benchmarks["BenchmarkSimThroughput/SimulateObserved"]
	fast := mean(plainRuns, "simcycles/s")
	slow := mean(d.Benchmarks["BenchmarkSimThroughput/SimulateSlowPath"], "simcycles/s")
	obsd := mean(obsRuns, "simcycles/s")
	supd := mean(d.Benchmarks["BenchmarkSimThroughput/SimulateSupervised"], "simcycles/s")
	derive := func(name string, v float64) {
		if d.Derived == nil {
			d.Derived = map[string]float64{}
		}
		d.Derived[name] = v
	}
	if fast > 0 {
		if slow > 0 {
			derive("fast-forward-speedup-x", fast/slow)
		}
		if obsd > 0 {
			derive("observe-overhead-pct", (1-obsd/fast)*100)
		}
		if supd > 0 {
			// The supervision layer's throughput cost: sliced RunFor with
			// budget/watchdog accounting vs one uninterrupted Run.
			derive("supervise-overhead-pct", (1-supd/fast)*100)
		}
		// Recording cost in memory terms, net of the plain run: bytes
		// allocated per simulated cycle and extra allocations per run. The
		// simulated-cycle count per op is recovered from the observed runs'
		// throughput times wall time.
		if obsd > 0 {
			if cycPerOp := obsd * mean(obsRuns, "ns/op") / 1e9; cycPerOp > 0 {
				if obsB, plainB := mean(obsRuns, "B/op"), mean(plainRuns, "B/op"); obsB > 0 && plainB > 0 {
					derive("obs-B-per-simcycle", (obsB-plainB)/cycPerOp)
				}
			}
			if obsA, plainA := mean(obsRuns, "allocs/op"), mean(plainRuns, "allocs/op"); obsA > 0 && plainA > 0 {
				derive("observe-extra-allocs-per-op", obsA-plainA)
			}
		}
	}
	// The checkpoint grid's throughput cost over the plain observed run: same
	// recorder, same sampling, plus a state hash every grid cycle. The
	// benchmark measures it as a paired per-op ratio (both arms interleaved
	// within each op, so host drift cancels) and reports the per-count
	// median; across counts the median is taken again — noise contamination
	// is one-sided (a loaded host only inflates the ratio), so the median
	// discards a bad count where a mean would smear it into the gate.
	if ckpt := d.Benchmarks["BenchmarkSimThroughput/SimulateCheckpointed"]; len(ckpt) > 0 {
		if v, ok := median(ckpt, "overhead-pct"); ok {
			derive("checkpoint-overhead-pct", v)
		}
		// The same paired bench times a plain arm, so the recorder overhead
		// gets the low-noise paired estimate too, replacing the mean-based
		// ratio above (which stays as the fallback for older documents that
		// predate the paired bench).
		if v, ok := median(ckpt, "obs-overhead-pct"); ok {
			derive("observe-overhead-pct", v)
		}
	}
	// The spill read path's checksum verification cost: loading a sealed
	// segmented spill with CRC32C verification against the manifest vs the
	// same load with checksums skipped, measured paired like the checkpoint
	// overhead above (both arms interleaved per op, median of medians).
	if sl := d.Benchmarks["BenchmarkSpillLoad"]; len(sl) > 0 {
		if v, ok := median(sl, "verify-overhead-pct"); ok {
			derive("scrub-verify-overhead-pct", v)
		}
	}
	// The indexed query engine against a full scan of the same spill.
	if idx, scan := mean(d.Benchmarks["BenchmarkQuerySpill/Indexed"], "ns/op"),
		mean(d.Benchmarks["BenchmarkQuerySpill/FullScan"], "ns/op"); idx > 0 && scan > 0 {
		derive("query-speedup-x", scan/idx)
	}
	// The indexed cross-run spill diff against fully replaying both spills.
	if idx, full := mean(d.Benchmarks["BenchmarkDiffSpill/Indexed"], "ns/op"),
		mean(d.Benchmarks["BenchmarkDiffSpill/FullReplay"], "ns/op"); idx > 0 && full > 0 {
		derive("diff-spill-speedup-x", full/idx)
	}

	if *flagFleet != "" {
		if err := mergeFleet(&d, *flagFleet); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: fleet:", err)
			os.Exit(1)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// Gates run last, against the fully merged derived map, so a violated
	// bound still leaves the document on stdout for inspection.
	failed := false
	for _, g := range flagGates {
		v, ok := d.Derived[g.name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchjson: gate %s%s%g: metric missing from derived map\n", g.name, g.op, g.val)
			failed = true
		case g.op == "<=" && v > g.val, g.op == ">=" && v < g.val:
			fmt.Fprintf(os.Stderr, "benchjson: gate FAILED: %s = %g, want %s %g\n", g.name, v, g.op, g.val)
			failed = true
		default:
			fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s = %g (%s %g)\n", g.name, v, g.op, g.val)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func median(rs []run, key string) (float64, bool) {
	var vs []float64
	for _, r := range rs {
		if v, ok := r[key]; ok {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0, false
	}
	sort.Float64s(vs)
	return vs[len(vs)/2], true
}

func mean(rs []run, key string) float64 {
	var sum float64
	var n int
	for _, r := range rs {
		if v, ok := r[key]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
