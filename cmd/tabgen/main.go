// Command tabgen regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured).
//
//	go run ./cmd/tabgen          # everything
//	go run ./cmd/tabgen -only e3 # one artifact
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"oclfpga/internal/device"
	"oclfpga/internal/experiments"
	"oclfpga/internal/kir"
)

func main() {
	only := flag.String("only", "", "run a single experiment: e1..e9")
	size := flag.Int("size", 32, "matrix size for Table 1 / stall monitor")
	flag.Parse()

	want := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}
	fail := func(id string, err error) {
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
	}

	if want("e1") {
		r, err := experiments.E1TimestampOverhead(device.StratixV(), 2000)
		fail("e1", err)
		fmt.Println(r.Table())
	}
	if want("e2") {
		for _, mode := range []kir.Mode{kir.SingleTask, kir.NDRange} {
			r, err := experiments.E2ExecutionOrder(mode)
			fail("e2", err)
			fmt.Println(r.Table())
		}
	}
	if want("e3") {
		r, err := experiments.E3Table1(device.StratixV(), *size)
		fail("e3", err)
		fmt.Println(r.Table())
		ok, err := experiments.E3Verify(8)
		fail("e3", err)
		fmt.Printf("functional check (SM+WP instrumented product correct): %v\n\n", ok)
	}
	if want("e4") {
		r, err := experiments.E4StallMonitor(*size, 512)
		fail("e4", err)
		fmt.Println(r.Table())
	}
	if want("e5") {
		r, err := experiments.E5Watchpoints(64)
		fail("e5", err)
		fmt.Println(r.Table())
	}
	if want("e6") {
		r, err := experiments.E6TimestampPitfalls()
		fail("e6", err)
		fmt.Println(r.Table())
	}
	if want("e7") {
		r, err := experiments.E7StallFree(512)
		fail("e7", err)
		fmt.Println(r.Table())
	}
	if want("e9") {
		r, err := experiments.E9ChannelStall(256)
		fail("e9", err)
		fmt.Println(r.Table())
	}
	if want("e8") {
		r, err := experiments.E8CrossDevice()
		fail("e8", err)
		fmt.Println(r.Table())
		fmt.Printf("all platforms show the paper's qualitative trends: %v\n", r.Trends())
	}
}
