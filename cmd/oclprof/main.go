// Command oclprof compiles and simulates a built-in workload with the
// requested profiling/debugging instrumentation and prints what a developer
// would see: the compiler log, the synthesis fit, and the collected traces.
//
//	go run ./cmd/oclprof -workload matvec-st -device s5
//	go run ./cmd/oclprof -workload matmul -stallmon -trace
//	go run ./cmd/oclprof -workload chase -timestamps hdl
//	go run ./cmd/oclprof -workload chanstall -inject freeze-read:pipe@500 -diagnose
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"oclfpga/internal/device"
	"oclfpga/internal/fault"
	"oclfpga/internal/hls"
	"oclfpga/internal/host"
	"oclfpga/internal/kir"
	"oclfpga/internal/obs"
	"oclfpga/internal/obs/analyze"
	"oclfpga/internal/obs/diff"
	"oclfpga/internal/obs/query"
	"oclfpga/internal/obs/scrub"
	"oclfpga/internal/sim"
	"oclfpga/internal/trace"
	"oclfpga/internal/workload"
)

var (
	flagWorkload = flag.String("workload", "matvec-st", "matvec-st | matvec-nd | matmul | chase | vecadd | fir | chanstall")
	flagDevice   = flag.String("device", "s5", "s5 | a10 | a10i")
	flagStallMon = flag.Bool("stallmon", false, "attach a stall monitor (matmul)")
	flagWatch    = flag.Bool("watch", false, "attach a smart watchpoint (matmul)")
	flagTS       = flag.String("timestamps", "none", "none | cl | hdl (chase)")
	flagTrace    = flag.Bool("trace", false, "drain and print ibuffer traces after the run")
	flagInstr    = flag.Bool("order", false, "instrument matvec with seq+timestamp capture")
	flagDepthOpt = flag.Bool("chandepthopt", false, "enable the channel-depth optimization pass (§3.1 hazard)")
	flagLog      = flag.Bool("log", true, "print the compiler log")
	flagProfile  = flag.Bool("profile", false, "print board-level channel/memory counters after the run")
	flagVCD      = flag.String("vcd", "", "write a SignalTap-style channel waveform (VCD) to this file")
	flagSched    = flag.Bool("schedule", false, "print the scheduled-datapath report (the vendor report analogue)")
	flagInject   = flag.String("inject", "", "inject faults: comma-separated kind[:target]@cycle[+duration][=value] specs")
	flagDiagnose = flag.Bool("diagnose", false, "on a hang, print the structured deadlock report instead of a bare error")
	flagStall    = flag.Int64("stalllimit", 0, "cycles without progress before diagnosing a hang (0 = default)")
	flagTimeline = flag.String("timeline", "", "write the event timeline (Perfetto/Chrome trace_event JSON) to this file")
	flagMetrics  = flag.String("metrics", "", "write the periodic metrics series (JSON) to this file")
	flagEvery    = flag.Int64("sample-every", 1000, "metrics sampling interval in cycles (with -metrics/-timeline)")
	flagJSON     = flag.Bool("json", false, "emit a machine-readable run report on stdout; human text goes to stderr")
	flagAttr     = flag.String("attr", "", "write the stall attribution & critical-path analysis (JSON) to this file")
	flagFolded   = flag.String("folded", "", "write folded stall stacks (flamegraph.pl input) to this file")
	flagPprof    = flag.String("pprof", "", "write a gzipped pprof stall profile to this file (open with go tool pprof -http)")
	flagSpill    = flag.String("spill", "", "stream observability records to this file as NDJSON while the run executes")
	flagSpillDir = flag.String("spill-dir", "", "stream observability records into crash-safe rotated NDJSON segments under this directory")
	flagSegLines = flag.Int("seg-lines", 4096, "segment rotation threshold in payload lines (with -spill-dir)")
	flagSegBytes = flag.Int64("seg-bytes", 1<<20, "segment rotation threshold in payload bytes (with -spill-dir)")
	flagAtCycle  = flag.Int64("at-cycle", -1, "re-execute to this cycle and dump the machine state as JSON (with -spill-dir: rewind from the nearest recorded checkpoint, hash-verified)")
	flagBreak    = flag.String("break", "", "halt re-execution on breakpoint/watchpoint specs: cycle=N | chan:NAME.stall>K | chan:NAME.len>K | unit:NAME.state=S (comma-separated)")
	flagQueryStr = flag.String("query", "", "answer an event query from -spill-dir via the segment index: 'track=T name=N kind=K cycles=[a,b]'")
	flagCkptEvry = flag.Int64("checkpoint-every", 0, "emit rewind checkpoints every N cycles into the observability stream (0 = off); with -at-cycle and no -spill-dir, rewind two-phase via this grid")
	flagScrub    = flag.Bool("scrub", false, "scrub -spill-dir: verify every segment fingerprint and self-heal damage, re-executing the recorded run (manifest Meta) for byte-identical segment repair; exit 1 if damage remains")
	flagDiff     = flag.Bool("diff", false, "compare two stall-attribution JSON files (baseline first): oclprof -diff A.json B.json; exit 3 on a regression")
	flagDiffSpl  = flag.Bool("diff-spill", false, "compare two completed spill directories (baseline first) via the segment indexes: oclprof -diff-spill dirA dirB; exit 3 on a regression")
	flagDiffRel  = flag.Float64("diff-rel", 1, "diff verdict relative threshold in percent (with -diff/-diff-spill)")
	flagDiffAbs  = flag.Int64("diff-abs", 16, "diff verdict absolute threshold in cycles (with -diff/-diff-spill)")
)

// out carries the human-readable narration. With -json it is rerouted to
// stderr so stdout stays a single valid JSON document.
var out io.Writer = os.Stdout

// debugOn reports whether a time-travel debugging mode (-at-cycle / -break)
// intercepts the run.
func debugOn() bool { return *flagAtCycle >= 0 || *flagBreak != "" }

// observeOn reports whether the observability layer should be attached.
// Debug re-execution runs unobserved: an existing -spill-dir is only read
// (for its checkpoints), never resumed or overwritten.
func observeOn() bool {
	if debugOn() {
		return false
	}
	return *flagTimeline != "" || *flagMetrics != "" || *flagAttr != "" ||
		*flagFolded != "" || *flagPprof != "" || *flagSpill != "" || *flagSpillDir != ""
}

// analyzeOn reports whether the run's timeline feeds the analysis engine.
func analyzeOn() bool { return *flagAttr != "" || *flagFolded != "" || *flagPprof != "" }

// spillFile holds the -spill NDJSON destination open across the run; the
// simulator's recorder streams into it and finishRun closes it.
var spillFile *os.File

// must unwraps a (value, error) pair, aborting the tool on error — the
// command-line analogue of the library's error returns.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

// rebuildSink, when set, reroutes the next run's observability stream into
// it instead of the flag-configured sinks — the re-execution path -scrub's
// byte-identical segment repair drives.
var rebuildSink obs.Sink

// spillMeta captures every flag the recorded event stream depends on, so a
// scrubber holding nothing but the spill can re-execute the identical run.
// SampleEvery lives in the manifest proper; everything else rides in Meta.
func spillMeta() map[string]string {
	meta := map[string]string{
		"workload":  *flagWorkload,
		"device":    *flagDevice,
		"ckptEvery": fmt.Sprint(*flagCkptEvry),
	}
	set := func(key, val string) {
		if val != "" {
			meta[key] = val
		}
	}
	setBool := func(key string, on bool) {
		if on {
			meta[key] = "1"
		}
	}
	set("inject", *flagInject)
	setBool("chandepthopt", *flagDepthOpt)
	setBool("stallmon", *flagStallMon)
	setBool("watch", *flagWatch)
	setBool("order", *flagInstr)
	if *flagTS != "none" {
		meta["timestamps"] = *flagTS
	}
	if *flagStall != 0 {
		meta["stalllimit"] = fmt.Sprint(*flagStall)
	}
	return meta
}

// simOpts builds the simulator options shared by every workload, parsing the
// -inject fault plan if given. design names the NDJSON spill stream so a
// replayed timeline matches the in-memory one byte for byte.
func simOpts(design string) sim.Options {
	opts := sim.Options{StallLimit: *flagStall}
	if *flagInject != "" {
		plan, err := fault.ParseSpecs(*flagInject)
		if err != nil {
			log.Fatal(err)
		}
		opts.Fault = plan
	}
	if rebuildSink != nil {
		opts.Observe = &obs.Config{SampleEvery: *flagEvery, CheckpointEvery: *flagCkptEvry, Sink: rebuildSink}
		return opts
	}
	if observeOn() {
		opts.Observe = &obs.Config{SampleEvery: *flagEvery, CheckpointEvery: *flagCkptEvry}
		var sinks []obs.Sink
		if *flagSpill != "" {
			f, err := os.Create(*flagSpill)
			if err != nil {
				log.Fatal(err)
			}
			spillFile = f
			sinks = append(sinks, obs.NewNDJSONSink(f, design, *flagEvery))
		}
		if *flagSpillDir != "" {
			seg, err := obs.NewSegmentSink(obs.SegmentConfig{
				Dir: *flagSpillDir, Design: design, SampleEvery: *flagEvery,
				Meta:     spillMeta(),
				MaxLines: *flagSegLines, MaxBytes: *flagSegBytes,
			})
			if err != nil {
				log.Fatal(err)
			}
			sinks = append(sinks, seg)
		}
		switch len(sinks) {
		case 0:
		case 1:
			opts.Observe.Sink = sinks[0]
		default:
			opts.Observe.Sink = obs.NewFanout(sinks...)
		}
	}
	return opts
}

// checkRun handles the outcome of Machine.Run: with -diagnose, a deadlock is
// reported as the structured hang diagnosis the paper's debugging flow calls
// for; otherwise any error aborts.
func checkRun(err error) {
	if err == nil {
		return
	}
	var de *sim.DeadlockError
	if *flagDiagnose && errors.As(err, &de) {
		if *flagJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if eerr := enc.Encode(struct {
				Deadlock *sim.DeadlockReport `json:"deadlock"`
			}{de.Report}); eerr != nil {
				log.Fatal(eerr)
			}
		} else {
			fmt.Fprint(out, de.Report.String())
		}
		os.Exit(1)
	}
	log.Fatal(err)
}

// debugRun intercepts the workload's run when a time-travel mode is active,
// reporting whether it handled the run (the workload's normal epilogue is
// skipped). Launches have been made; the machine sits at cycle 0.
func debugRun(m *sim.Machine) bool {
	switch {
	case *flagAtCycle >= 0:
		runAtCycle(m)
		return true
	case *flagBreak != "":
		runBreak(m)
		return true
	}
	return false
}

// runAtCycle re-executes to the target cycle and dumps the machine state as
// the run's single stdout document. With -spill-dir, the rewind starts by
// fast-forwarding to the nearest recorded checkpoint at or before the target
// and verifying its design and state hashes — a mismatch means the
// re-execution is not the spilled run (different arguments, fault plan, or
// code) and is fatal. With only -checkpoint-every K, the run is split at the
// same grid cycle unverified. Either way the dump is byte-identical to a
// plain cycle-0 re-execution's.
func runAtCycle(m *sim.Machine) {
	target := *flagAtCycle
	var start int64
	var want *obs.Checkpoint
	if *flagSpillDir != "" {
		cks, err := query.Checkpoints(*flagSpillDir)
		if err != nil {
			log.Fatal(err)
		}
		for i := range cks {
			if cks[i].Cycle <= target && (want == nil || cks[i].Cycle > want.Cycle) {
				want = &cks[i]
			}
		}
		if want != nil {
			start = want.Cycle
		}
	} else if *flagCkptEvry > 0 {
		start = target / *flagCkptEvry * *flagCkptEvry
	}
	if start > 0 {
		checkRun(m.RunTo(start))
		if want != nil {
			if got := m.DesignHash(); got != want.DesignHash {
				log.Fatalf("divergent re-execution: design hash %016x, checkpoint recorded %016x (different design?)",
					got, want.DesignHash)
			}
			if got := m.StateHash(); got != want.StateHash {
				log.Fatalf("divergent re-execution: state hash %016x at cycle %d, checkpoint recorded %016x (different arguments or fault plan?)",
					got, start, want.StateHash)
			}
			fmt.Fprintf(os.Stderr, "rewind: checkpoint at cycle %d verified; fast-forwarding %d cycles to target\n",
				start, target-start)
		} else {
			fmt.Fprintf(os.Stderr, "rewind: two-phase via checkpoint grid cycle %d (no spill; unverified)\n", start)
		}
	}
	checkRun(m.RunTo(target))
	buf, err := json.MarshalIndent(m.StateDump(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(buf, '\n'))
}

// breakReport is -break's stdout document: the specs, the first hit (null
// when the run completed without one), and the machine state at the halt.
type breakReport struct {
	Workload string            `json:"workload"`
	Specs    []string          `json:"specs"`
	Hit      *sim.BreakHit     `json:"hit"`
	State    *sim.MachineState `json:"state"`
}

// runBreak re-executes under the -break specs and reports the first hit with
// the machine state frozen at the halt cycle.
func runBreak(m *sim.Machine) {
	hit, err := m.RunBreaks(breakSpecs)
	checkRun(err)
	r := breakReport{Workload: *flagWorkload, Specs: make([]string, len(breakSpecs)), Hit: hit, State: m.StateDump()}
	for i, b := range breakSpecs {
		r.Specs[i] = b.String()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	if hit != nil {
		fmt.Fprintf(os.Stderr, "break: %s hit at cycle %d\n", hit.Spec, hit.Cycle)
	} else {
		fmt.Fprintf(os.Stderr, "break: run completed at cycle %d without a hit\n", m.Cycle())
	}
}

// runReport is the machine-readable summary -json prints on stdout.
type runReport struct {
	Workload    string               `json:"workload"`
	Device      string               `json:"device"`
	Cycles      int64                `json:"cycles"`
	Units       []unitReport         `json:"units"`
	Profile     *sim.ProfileReport   `json:"profile,omitempty"`
	FastForward sim.FastForwardStats `json:"fastForward"`
	Timeline    string               `json:"timelineFile,omitempty"`
	Metrics     string               `json:"metricsFile,omitempty"`
	Attr        string               `json:"attrFile,omitempty"`
	Folded      string               `json:"foldedFile,omitempty"`
	Pprof       string               `json:"pprofFile,omitempty"`
	Spill       string               `json:"spillFile,omitempty"`
	SpillDir    string               `json:"spillDir,omitempty"`
	SampleEvery int64                `json:"sampleEvery,omitempty"`
	// Stall summarizes the attribution when the analysis engine ran.
	Stall *stallReport `json:"stall,omitempty"`
}

type stallReport struct {
	TotalStallCycles int64 `json:"totalStallCycles"`
	CriticalCycles   int64 `json:"criticalCycles"`
	Rows             int   `json:"rows"`
}

type unitReport struct {
	Kernel     string `json:"kernel"`
	FinishedAt int64  `json:"finishedAt"`
}

// finishRun is the common epilogue of every workload: dump the timeline and
// metrics files if requested, and with -json emit the run report on stdout.
func finishRun(m *sim.Machine, units ...*sim.Unit) {
	if *flagTimeline != "" {
		writeJSONFile(*flagTimeline, func(w io.Writer) error {
			return obs.WriteTimeline(w, m.Timeline())
		})
		fmt.Fprintf(out, "timeline: %s (%d events; open in ui.perfetto.dev)\n",
			*flagTimeline, len(m.Timeline().Events))
	}
	if *flagMetrics != "" {
		writeJSONFile(*flagMetrics, func(w io.Writer) error {
			return obs.WriteSeries(w, m.Series())
		})
		fmt.Fprintf(out, "metrics: %s (%d samples, every %d cycles)\n",
			*flagMetrics, len(m.Samples()), *flagEvery)
	}
	if *flagSpill != "" {
		// Timeline() above (or the first analysis call below) finalizes the
		// recorder, which flushes the NDJSON terminal line through the sink.
		m.Timeline()
		if err := m.ObserveErr(); err != nil {
			log.Fatal(err)
		}
		if err := spillFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "spill: %s (NDJSON event stream; replay with obscheck -spill)\n", *flagSpill)
	}
	if *flagSpillDir != "" {
		// Same finalize path: Timeline() committed the segments through the
		// sink; a failed commit (full disk, blocked rename) surfaces here.
		m.Timeline()
		if rebuildSink != nil {
			// Repair re-execution: the scrubber's sink holds any stream error
			// and its Commit reports it typed; nothing else to emit.
			return
		}
		if err := m.ObserveErr(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "spill-dir: %s (crash-safe segments; validate with obscheck -spill-dir)\n", *flagSpillDir)
	}
	var attr *analyze.Attribution
	if analyzeOn() {
		// The flat read path: attribute straight off the recorder's
		// fixed-width records instead of materializing the Event timeline.
		attr = analyze.AttributeRecorder(m.Observer())
		if *flagAttr != "" {
			writeJSONFile(*flagAttr, func(w io.Writer) error { return analyze.WriteJSON(w, attr) })
			fmt.Fprintf(out, "attribution: %s (%d rows, critical path %d cycles)\n",
				*flagAttr, len(attr.Rows), attr.CriticalCycles)
		}
		if *flagFolded != "" {
			writeJSONFile(*flagFolded, func(w io.Writer) error { return analyze.WriteFolded(w, attr) })
			fmt.Fprintf(out, "folded stacks: %s\n", *flagFolded)
		}
		if *flagPprof != "" {
			writeJSONFile(*flagPprof, func(w io.Writer) error { return analyze.WritePprof(w, attr) })
			fmt.Fprintf(out, "pprof profile: %s (go tool pprof -http=: %s)\n", *flagPprof, *flagPprof)
		}
	}
	if !*flagJSON {
		return
	}
	r := runReport{
		Workload:    *flagWorkload,
		Device:      *flagDevice,
		Cycles:      m.Cycle(),
		FastForward: m.FastForwardStats(),
		Timeline:    *flagTimeline,
		Metrics:     *flagMetrics,
		Attr:        *flagAttr,
		Folded:      *flagFolded,
		Pprof:       *flagPprof,
		Spill:       *flagSpill,
		SpillDir:    *flagSpillDir,
	}
	if observeOn() {
		r.SampleEvery = *flagEvery
	}
	if attr != nil {
		r.Stall = &stallReport{
			TotalStallCycles: attr.TotalStallCycles,
			CriticalCycles:   attr.CriticalCycles,
			Rows:             len(attr.Rows),
		}
	}
	for _, u := range units {
		r.Units = append(r.Units, unitReport{Kernel: u.Kernel().UnitName(), FinishedAt: u.FinishedAt()})
	}
	if *flagProfile {
		p := m.Profile(units...)
		r.Profile = &p
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
}

func writeJSONFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func pickDevice() *device.Device {
	switch *flagDevice {
	case "s5":
		return device.StratixV()
	case "a10":
		return device.Arria10()
	case "a10i":
		return device.Arria10Integrated()
	}
	log.Fatalf("unknown device %q", *flagDevice)
	return nil
}

// usageExit rejects a mutually-exclusive flag combination: message, usage,
// exit code 2 (the flag-misuse convention).
func usageExit(msg string) {
	fmt.Fprintln(os.Stderr, "oclprof: "+msg)
	flag.Usage()
	os.Exit(2)
}

// breakSpecs is the -break list, parsed before any compilation so a typo
// fails fast.
var breakSpecs []query.Break

// validateModes enforces the debug/compare modes' exclusivity rules.
// -at-cycle, -break, -query, -scrub, -diff, and -diff-spill each own the run
// (and stdout), so they exclude each other and every trace-producing flag;
// -at-cycle keeps -spill-dir as its read-only checkpoint source, -query and
// -scrub require it, and the diff modes take their two inputs as positional
// arguments instead.
func validateModes() {
	modes := 0
	for _, on := range []bool{*flagAtCycle >= 0, *flagBreak != "", *flagQueryStr != "", *flagScrub, *flagDiff, *flagDiffSpl} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		usageExit("-at-cycle, -break, -query, -scrub, -diff, and -diff-spill are mutually exclusive")
	}
	if modes == 0 {
		return
	}
	outputs := []struct {
		set  bool
		name string
	}{
		{*flagTimeline != "", "-timeline"},
		{*flagMetrics != "", "-metrics"},
		{*flagAttr != "", "-attr"},
		{*flagFolded != "", "-folded"},
		{*flagPprof != "", "-pprof"},
		{*flagSpill != "", "-spill"},
		{*flagVCD != "", "-vcd"},
		{*flagJSON, "-json"},
	}
	mode := "-at-cycle"
	switch {
	case *flagBreak != "":
		mode = "-break"
	case *flagQueryStr != "":
		mode = "-query"
	case *flagScrub:
		mode = "-scrub"
	case *flagDiff:
		mode = "-diff"
	case *flagDiffSpl:
		mode = "-diff-spill"
	}
	for _, o := range outputs {
		if o.set {
			usageExit(mode + " cannot be combined with " + o.name)
		}
	}
	if *flagBreak != "" && *flagSpillDir != "" {
		usageExit("-break cannot be combined with -spill-dir (breakpointed re-execution is unobserved)")
	}
	if (*flagDiff || *flagDiffSpl) && *flagSpillDir != "" {
		usageExit(mode + " cannot be combined with -spill-dir (pass the two inputs as arguments, baseline first)")
	}
	if (*flagDiff || *flagDiffSpl) && flag.NArg() != 2 {
		usageExit(mode + " takes exactly two arguments, baseline first")
	}
	if *flagQueryStr != "" && *flagSpillDir == "" {
		usageExit("-query requires -spill-dir (the indexed spill to query)")
	}
	if *flagScrub && *flagSpillDir == "" {
		usageExit("-scrub requires -spill-dir (the spill to verify and heal)")
	}
	if *flagBreak != "" {
		var err error
		if breakSpecs, err = query.ParseBreaks(*flagBreak); err != nil {
			usageExit(err.Error())
		}
	}
}

// runQuery answers -query straight from the spill directory — no device, no
// compilation, no re-execution: the segment index does the work.
func runQuery() {
	q, err := query.ParseQuery(*flagQueryStr)
	if err != nil {
		usageExit(err.Error())
	}
	res, err := query.Run(*flagSpillDir, q)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "query: %d events, read %d of %d segments\n",
		len(res.Events), res.SegmentsRead, res.SegmentsTotal)
}

// runDiff answers -diff/-diff-spill without a device or compilation: the
// report is computed from the two artifacts (attribution files or spill
// directories, baseline first), written to stdout as the single JSON
// document, and the process exits with the verdict's code (0 neutral or
// improved, 3 regressed).
func runDiff() {
	th := diff.Thresholds{RelPct: *flagDiffRel, AbsCycles: *flagDiffAbs}
	if th.RelPct < 0 || th.AbsCycles < 0 {
		usageExit("-diff-rel and -diff-abs must be non-negative")
	}
	argA, argB := flag.Arg(0), flag.Arg(1)
	var r *diff.Report
	if *flagDiffSpl {
		var sa, sb *diff.SpillSide
		var err error
		r, sa, sb, err = diff.CompareSpills(argA, argB, th)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "diff: read %d of %d / %d of %d segments via index\n",
			sa.SegmentsRead, sa.SegmentsTotal, sb.SegmentsRead, sb.SegmentsTotal)
	} else {
		readAttr := func(path string) *analyze.Attribution {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			a, err := analyze.ReadJSON(f)
			if err != nil {
				log.Fatal(err)
			}
			if err := a.Validate(); err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			return a
		}
		r = diff.Compare(readAttr(argA), readAttr(argB), nil, nil, th)
	}
	if err := diff.WriteReport(os.Stdout, r); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "diff: %s (total stall %d -> %d, critical path %d -> %d)\n",
		r.Verdict, r.TotalStallA, r.TotalStallB, r.Critical.CyclesA, r.Critical.CyclesB)
	os.Exit(r.Verdict.ExitCode())
}

func main() {
	flag.Parse()
	validateModes()
	if *flagQueryStr != "" {
		runQuery()
		return
	}
	if *flagScrub {
		runScrub()
		return
	}
	if *flagDiff || *flagDiffSpl {
		runDiff()
		return
	}
	if *flagJSON || debugOn() {
		// keep stdout a single machine-readable document; narration to stderr
		out = os.Stderr
	}
	runWorkload(pickDevice(), hls.Options{OptimizeChannelDepths: *flagDepthOpt})
}

func runWorkload(dev *device.Device, opts hls.Options) {
	switch *flagWorkload {
	case "matvec-st", "matvec-nd":
		runMatVec(dev, opts)
	case "matmul":
		runMatMul(dev, opts)
	case "chase":
		runChase(dev, opts)
	case "vecadd":
		runVecAdd(dev, opts)
	case "fir":
		runFIR(dev, opts)
	case "chanstall":
		runChanStall(dev, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *flagWorkload)
		flag.Usage()
		os.Exit(2)
	}
}

func knownWorkload(w string) bool {
	switch w {
	case "matvec-st", "matvec-nd", "matmul", "chase", "vecadd", "fir", "chanstall":
		return true
	}
	return false
}

// rebuildFromMeta is the scrub re-execution hook: it restores the recorded
// run's parameters from the spill manifest (spillMeta wrote them) and replays
// the workload into sink — the RepairSink whose fingerprint verification
// makes the resulting segment swap byte-identical-or-nothing.
func rebuildFromMeta(man *obs.Manifest, sink obs.Sink) error {
	w := man.Meta["workload"]
	if !knownWorkload(w) {
		return fmt.Errorf("manifest records workload %q, which oclprof cannot re-execute", w)
	}
	metaInt := func(key string, dst *int64) error {
		v, ok := man.Meta[key]
		if !ok {
			*dst = 0
			return nil
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("manifest %s %q: %w", key, v, err)
		}
		*dst = n
		return nil
	}
	*flagWorkload = w
	if d := man.Meta["device"]; d != "" {
		*flagDevice = d
	}
	*flagEvery = man.SampleEvery
	if err := metaInt("ckptEvery", flagCkptEvry); err != nil {
		return err
	}
	if err := metaInt("stalllimit", flagStall); err != nil {
		return err
	}
	*flagInject = man.Meta["inject"]
	*flagDepthOpt = man.Meta["chandepthopt"] == "1"
	*flagStallMon = man.Meta["stallmon"] == "1"
	*flagWatch = man.Meta["watch"] == "1"
	*flagInstr = man.Meta["order"] == "1"
	*flagTS = "none"
	if v := man.Meta["timestamps"]; v != "" {
		*flagTS = v
	}
	// Silence the run and drop every output flag: the re-execution exists
	// only to feed the repair sink, and the scrubber owns the report.
	*flagLog, *flagSched, *flagProfile, *flagTrace, *flagJSON = false, false, false, false, false
	*flagVCD, *flagTimeline, *flagMetrics, *flagSpill = "", "", "", ""
	*flagAttr, *flagFolded, *flagPprof = "", "", ""
	out = io.Discard
	rebuildSink = sink
	defer func() { rebuildSink = nil }()
	runWorkload(pickDevice(), hls.Options{OptimizeChannelDepths: *flagDepthOpt})
	return nil
}

// scrubVerdict is -scrub's stdout document.
type scrubVerdict struct {
	Dir     string        `json:"dir"`
	Scan    *scrub.Report `json:"scan"`
	Repair  *scrub.Result `json:"repair,omitempty"`
	Healthy bool          `json:"healthy"`
}

// runScrub verifies and self-heals -spill-dir: derived damage (commit
// debris, stale sidecars) is repaired in place, and damaged segment bodies
// are regenerated byte-identically by re-executing the recorded run. Exit 0
// means the directory ends healthy.
func runScrub() {
	dir := *flagSpillDir
	rep, err := scrub.Scan(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range rep.Damage {
		fmt.Fprintf(os.Stderr, "scrub: %s: %s (%s) — repair: %s\n", d.File, d.Kind, d.Detail, d.Repair)
	}
	v := scrubVerdict{Dir: dir, Scan: rep, Healthy: rep.Healthy}
	if !rep.Healthy {
		res, rerr := scrub.Repair(dir, rebuildFromMeta)
		v.Repair = res
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "scrub: repair: %v\n", rerr)
		} else {
			v.Healthy = res.Healthy
			fmt.Fprintf(os.Stderr, "scrub: %d orphans removed, %d sidecars rebuilt, %d segments re-executed\n",
				len(res.RemovedOrphans), res.RebuiltSidecars, len(res.Repaired))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&v); err != nil {
		log.Fatal(err)
	}
	verdict := "healthy"
	if !v.Healthy {
		verdict = "UNHEALTHY"
	}
	fmt.Fprintf(os.Stderr, "scrub: %s %s (%d segments)\n", dir, verdict, len(rep.Segments))
	if !v.Healthy {
		os.Exit(1)
	}
}

func compileAndReport(p *kir.Program, dev *device.Device, opts hls.Options) *hls.Design {
	d, err := hls.Compile(p, dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *flagLog {
		fmt.Fprintln(out, "== compiler log ==")
		for _, l := range d.Log {
			fmt.Fprintln(out, "  "+l)
		}
	}
	fmt.Fprintf(out, "== fit: %.1fK ALUTs, %d RAM blocks, %s memory bits, Fmax %.1f MHz ==\n\n",
		d.Area.LogicK(), d.Area.M20Ks, fmtBits(d.Area.MemBits), d.Area.FmaxMHz)
	if *flagSched {
		fmt.Fprintln(out, d.DumpSchedule())
	}
	return d
}

func fmtBits(b int64) string { return fmt.Sprintf("%.2fM", float64(b)/1e6) }

func runMatVec(dev *device.Device, opts hls.Options) {
	mode := kir.SingleTask
	if *flagWorkload == "matvec-nd" {
		mode = kir.NDRange
	}
	p := kir.NewProgram(*flagWorkload)
	mv := workload.BuildMatVec(p, workload.MatVecConfig{Mode: mode, Instrument: *flagInstr})
	d := compileAndReport(p, dev, opts)
	m := sim.New(d, simOpts(p.Name))
	var vcd *sim.VCDRecorder
	if *flagVCD != "" {
		vcd = m.NewVCD()
	}
	cfg := mv.Config
	x := must(m.NewBuffer("x", kir.I32, cfg.N*cfg.Num))
	y := must(m.NewBuffer("y", kir.I32, cfg.Num))
	z := must(m.NewBuffer("z", kir.I32, cfg.N))
	args := sim.Args{"x": x, "y": y, "z": z}
	if *flagInstr {
		args["info1"] = must(m.NewBuffer("info1", kir.I64, mv.InfoSize))
		args["info2"] = must(m.NewBuffer("info2", kir.I32, mv.InfoSize))
		args["info3"] = must(m.NewBuffer("info3", kir.I32, mv.InfoSize))
	}
	for i := range x.Data {
		x.Data[i] = int64(i % 7)
	}
	for i := range y.Data {
		y.Data[i] = int64(i % 5)
	}
	var u *sim.Unit
	var err error
	if mode == kir.NDRange {
		u, err = m.LaunchND(mv.KernelName, int64(cfg.N), args)
	} else {
		u, err = m.Launch(mv.KernelName, args)
	}
	if err != nil {
		log.Fatal(err)
	}
	if debugRun(m) {
		return
	}
	checkRun(m.Run())
	fmt.Fprintf(out, "%s finished in %d cycles (%.2f us at Fmax)\n",
		mv.KernelName, u.FinishedAt(), float64(u.FinishedAt())/d.Area.FmaxMHz)
	if *flagProfile {
		fmt.Fprintln(out, m.Profile(u))
	}
	if vcd != nil {
		f, err := os.Create(*flagVCD)
		if err != nil {
			log.Fatal(err)
		}
		if err := vcd.Flush(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(out, "waveform: %s (%d value changes)\n", *flagVCD, vcd.Changes())
	}
	if *flagInstr {
		i1 := m.Buffer("info1")
		i2 := m.Buffer("info2")
		i3 := m.Buffer("info3")
		fmt.Fprintln(out, "\nexecution order capture (first 20 sequence numbers):")
		fmt.Fprintln(out, "  seq  timestamp     k    i")
		for s := 1; s <= 20 && s < mv.InfoSize; s++ {
			if i1.Data[s] == 0 {
				break
			}
			fmt.Fprintf(out, "  %3d  %9d  %4d %4d\n", s, i1.Data[s], i2.Data[s], i3.Data[s])
		}
	}
	finishRun(m, u)
}

func runMatMul(dev *device.Device, opts hls.Options) {
	p := kir.NewProgram("matmul")
	const n = 16
	mm, err := workload.BuildMatMul(p, workload.MatMulConfig{
		Size: n, StallMonitor: *flagStallMon, Watchpoint: *flagWatch, Depth: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	var smIfc, wpIfc *host.Interface
	if mm.SM != nil {
		smIfc = host.BuildInterface(p, mm.SM)
	}
	if mm.WP != nil {
		wpIfc = host.BuildInterface(p, mm.WP)
	}
	d := compileAndReport(p, dev, opts)
	m := sim.New(d, simOpts(p.Name))
	da := must(m.NewBuffer("data_a", kir.I32, n*n))
	db := must(m.NewBuffer("data_b", kir.I32, n*n))
	dc := must(m.NewBuffer("data_c", kir.I32, n*n))
	for i := range da.Data {
		da.Data[i] = int64(i % 13)
		db.Data[i] = int64(i % 9)
	}
	var smCtl, wpCtl *host.Controller
	if smIfc != nil {
		smCtl = must(host.NewController(m, smIfc))
		for id := 0; id < 2; id++ {
			if err := smCtl.StartLinear(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	if wpIfc != nil {
		wpCtl = must(host.NewController(m, wpIfc))
		if err := wpCtl.StartLinear(0); err != nil {
			log.Fatal(err)
		}
	}
	u, err := m.Launch(mm.KernelName, sim.Args{"data_a": da, "data_b": db, "data_c": dc})
	if err != nil {
		log.Fatal(err)
	}
	if debugRun(m) {
		return
	}
	checkRun(m.Run())
	fmt.Fprintf(out, "matmul %dx%d finished in %d cycles\n", n, n, u.FinishedAt())
	if *flagProfile {
		fmt.Fprintln(out, m.Profile(u))
	}
	if smCtl != nil && *flagTrace {
		for id := 0; id < 2; id++ {
			if err := smCtl.Stop(id); err != nil {
				log.Fatal(err)
			}
		}
		before, _ := smCtl.ReadTrace(0)
		after, _ := smCtl.ReadTrace(1)
		lats := trace.Latencies(trace.Valid(before), trace.Valid(after))
		st := trace.Summarize(lats)
		fmt.Fprintf(out, "\nstall monitor: %d samples, load latency min %d / median %d / max %d cycles\n",
			st.N, st.Min, st.P50, st.Max)
		fmt.Fprintln(out, trace.NewHistogram(lats, 8, 10))
	}
	if wpCtl != nil && *flagTrace {
		if err := wpCtl.Stop(0); err != nil {
			log.Fatal(err)
		}
		recs, _ := wpCtl.ReadTrace(0)
		evs := trace.DecodeWatch(trace.Valid(recs), 16)
		fmt.Fprintf(out, "\nwatchpoint events at address 0: %d\n", len(evs))
		for i, e := range evs {
			if i >= 10 {
				fmt.Fprintln(out, "  ...")
				break
			}
			fmt.Fprintf(out, "  cycle %d: addr %d value %d\n", e.T, e.Addr, e.Tag)
		}
	}
	finishRun(m, u)
}

func runChase(dev *device.Device, opts hls.Options) {
	kind := workload.NoTimestamp
	switch *flagTS {
	case "cl":
		kind = workload.CLCounter
	case "hdl":
		kind = workload.HDLCounter
	}
	p := kir.NewProgram("chase")
	ch, err := workload.BuildChase(p, workload.ChaseConfig{Steps: 2000, Kind: kind})
	if err != nil {
		log.Fatal(err)
	}
	d := compileAndReport(p, dev, opts)
	m := sim.New(d, simOpts(p.Name))
	table := must(m.NewBuffer("next", kir.I32, 1<<14))
	res := must(m.NewBuffer("out", kir.I64, 2))
	for i := range table.Data {
		table.Data[i] = int64((i*1103 + 331) % len(table.Data))
	}
	u, err := m.Launch(ch.KernelName, sim.Args{"next": table, "out": res})
	if err != nil {
		log.Fatal(err)
	}
	if debugRun(m) {
		return
	}
	checkRun(m.Run())
	fmt.Fprintf(out, "chase finished in %d cycles; final value %d\n", u.FinishedAt(), res.Data[0])
	if *flagProfile {
		fmt.Fprintln(out, m.Profile(u))
	}
	if kind != workload.NoTimestamp {
		fmt.Fprintf(out, "on-chip measured duration: %d cycles (%s timestamps)\n", res.Data[1], kind)
	}
	finishRun(m, u)
}

func runVecAdd(dev *device.Device, opts hls.Options) {
	p := kir.NewProgram("vecadd")
	name := workload.BuildVecAdd(p)
	d := compileAndReport(p, dev, opts)
	m := sim.New(d, simOpts(p.Name))
	const n = 1024
	x := must(m.NewBuffer("x", kir.I32, n))
	y := must(m.NewBuffer("y", kir.I32, n))
	z := must(m.NewBuffer("z", kir.I32, n))
	for i := 0; i < n; i++ {
		x.Data[i], y.Data[i] = int64(i), int64(2*i)
	}
	u, err := m.LaunchND(name, n, sim.Args{"x": x, "y": y, "z": z})
	if err != nil {
		log.Fatal(err)
	}
	if debugRun(m) {
		return
	}
	checkRun(m.Run())
	fmt.Fprintf(out, "vecadd over %d work-items in %d cycles; z[10]=%d\n", n, u.FinishedAt(), z.Data[10])
	finishRun(m, u)
}

func runFIR(dev *device.Device, opts hls.Options) {
	p := kir.NewProgram("fir")
	f, err := workload.BuildFIR(p, workload.FIRConfig{Taps: 8, N: 512, StallMonitor: *flagStallMon})
	if err != nil {
		log.Fatal(err)
	}
	var smIfc *host.Interface
	if f.SM != nil {
		smIfc = host.BuildInterface(p, f.SM)
	}
	d := compileAndReport(p, dev, opts)
	m := sim.New(d, simOpts(p.Name))
	bx := must(m.NewBuffer("x", kir.I32, 512))
	bc := must(m.NewBuffer("coeff", kir.I32, 8))
	by := must(m.NewBuffer("y", kir.I32, 512))
	for i := range bx.Data {
		bx.Data[i] = int64(i%33 - 16)
	}
	for i := range bc.Data {
		bc.Data[i] = int64(8 - i)
	}
	var ctl *host.Controller
	if smIfc != nil {
		ctl = must(host.NewController(m, smIfc))
		for id := 0; id < 2; id++ {
			if err := ctl.StartLinear(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	u, err := m.Launch(f.KernelName, sim.Args{"x": bx, "coeff": bc, "y": by})
	if err != nil {
		log.Fatal(err)
	}
	if debugRun(m) {
		return
	}
	checkRun(m.Run())
	fmt.Fprintf(out, "fir over %d samples in %d cycles; y[8]=%d\n", 512, u.FinishedAt(), by.Data[8])
	if *flagProfile {
		fmt.Fprintln(out, m.Profile(u))
	}
	if ctl != nil && *flagTrace {
		for id := 0; id < 2; id++ {
			if err := ctl.Stop(id); err != nil {
				log.Fatal(err)
			}
		}
		before, _ := ctl.ReadTrace(0)
		after, _ := ctl.ReadTrace(1)
		lats := trace.Latencies(trace.Valid(before), trace.Valid(after))
		st := trace.Summarize(lats)
		fmt.Fprintf(out, "sample-load latency: min %d / median %d / max %d over %d samples\n",
			st.Min, st.P50, st.Max, st.N)
	}
	finishRun(m, u)
}

// runChanStall builds the §5.1 producer/consumer pair (the E9 experiment's
// program) as a fault-injection playground: a fast producer feeds a slow
// consumer through a depth-4 channel named "pipe". With -inject, faults are
// applied to the live fabric; with -diagnose, a resulting hang prints the
// structured deadlock report instead of an opaque error.
//
//	go run ./cmd/oclprof -workload chanstall -inject freeze-read:pipe@500 -diagnose
func runChanStall(dev *device.Device, opts hls.Options) {
	const n = 256
	p := kir.NewProgram("chanstall")
	pipe := p.AddChan("pipe", 4, kir.I32)

	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", int64(n), nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(pipe, lb.Load(src, i))
		return nil
	})

	cons := p.AddKernel("consumer", kir.SingleTask)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", int64(n), nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		v := lb.ChanRead(pipe)
		slow := lb.ForN("j", 2, []kir.Val{v}, func(jb *kir.Builder, j kir.Val, c []kir.Val) []kir.Val {
			return []kir.Val{jb.Div(jb.Add(c[0], jb.Ci32(3)), jb.Ci32(1))}
		})
		lb.Store(dst, i, slow[0])
		return nil
	})

	d := compileAndReport(p, dev, opts)
	so := simOpts(p.Name)
	if so.StallLimit == 0 {
		so.StallLimit = 2000 // diagnose injected hangs promptly
	}
	m := sim.New(d, so)
	bs := must(m.NewBuffer("src", kir.I32, n))
	bd := must(m.NewBuffer("dst", kir.I32, n))
	for i := range bs.Data {
		bs.Data[i] = int64(i + 1)
	}
	pu, err := m.Launch("producer", sim.Args{"src": bs})
	if err != nil {
		log.Fatal(err)
	}
	cu, err := m.Launch("consumer", sim.Args{"dst": bd})
	if err != nil {
		log.Fatal(err)
	}
	if debugRun(m) {
		return
	}
	checkRun(m.Run())
	fmt.Fprintf(out, "producer finished at cycle %d, consumer at cycle %d; dst[%d]=%d\n",
		pu.FinishedAt(), cu.FinishedAt(), n-1, bd.Data[n-1])
	if *flagProfile {
		fmt.Fprintln(out, m.Profile(pu, cu))
	}
	finishRun(m, pu, cu)
}
