package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"oclfpga/internal/obs"
)

// The CLI contract tests run the real binary: TestMain builds it once into a
// temp dir and each test asserts on exit code, stdout, and stderr — the
// -json promise (stdout is exactly one JSON document, narration on stderr)
// is what scripts and CI pipelines depend on.

var oclprofBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "oclprof-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	oclprofBin = filepath.Join(dir, "oclprof")
	if out, err := exec.Command("go", "build", "-o", oclprofBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runBin executes the built binary and returns stdout, stderr, and exit code.
func runBin(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(oclprofBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatal(err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// oneJSONDocument asserts the string is exactly one JSON value and returns it.
func oneJSONDocument(t *testing.T, s string) map[string]any {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader([]byte(s)))
	var v map[string]any
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, s)
	}
	if dec.More() {
		t.Fatalf("stdout holds more than one JSON document:\n%s", s)
	}
	return v
}

func TestJSONReportContract(t *testing.T) {
	dir := t.TempDir()
	tl := filepath.Join(dir, "tl.json")
	stdout, stderr, code := runBin(t,
		"-workload", "chanstall", "-json", "-timeline", tl, "-sample-every", "500")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	v := oneJSONDocument(t, stdout)
	if v["workload"] != "chanstall" {
		t.Fatalf("workload = %v", v["workload"])
	}
	if c, ok := v["cycles"].(float64); !ok || c <= 0 {
		t.Fatalf("cycles = %v", v["cycles"])
	}
	if _, ok := v["units"].([]any); !ok {
		t.Fatalf("units missing: %v", v["units"])
	}
	// narration (compiler log, fit line, file notes) must land on stderr
	if !bytes.Contains([]byte(stderr), []byte("timeline: "+tl)) {
		t.Fatalf("narration missing from stderr:\n%s", stderr)
	}
	if _, err := os.Stat(tl); err != nil {
		t.Fatal(err)
	}
}

func TestJSONStallSummary(t *testing.T) {
	dir := t.TempDir()
	stdout, stderr, code := runBin(t,
		"-workload", "chanstall", "-json", "-log=false",
		"-attr", filepath.Join(dir, "attr.json"),
		"-pprof", filepath.Join(dir, "attr.pb.gz"),
		"-spill", filepath.Join(dir, "spill.ndjson"))
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	v := oneJSONDocument(t, stdout)
	stall, ok := v["stall"].(map[string]any)
	if !ok {
		t.Fatalf("stall summary missing: %v", v)
	}
	if c, ok := stall["criticalCycles"].(float64); !ok || c <= 0 {
		t.Fatalf("criticalCycles = %v", stall["criticalCycles"])
	}
	for _, f := range []string{"attr.json", "attr.pb.gz", "spill.ndjson"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Error(err)
		}
	}
}

func TestUnknownWorkloadExitCode(t *testing.T) {
	_, stderr, code := runBin(t, "-workload", "nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
	}
}

// TestDiffFlagHygiene pins the -diff/-diff-spill flag contract: the diff
// modes are mutually exclusive with every other mode and with run outputs,
// take exactly two positional arguments, and reject negative thresholds —
// all flag misuse, all exit 2.
func TestDiffFlagHygiene(t *testing.T) {
	for name, args := range map[string][]string{
		"diff+at-cycle":   {"-diff", "-at-cycle", "5", "a.json", "b.json"},
		"diff+break":      {"-diff", "-break", "chan:pipe", "a.json", "b.json"},
		"diff+query":      {"-diff", "-query", "kind=chan-stall", "a.json", "b.json"},
		"diff+diff-spill": {"-diff", "-diff-spill", "a", "b"},
		"spill+at-cycle":  {"-diff-spill", "-at-cycle", "5", "a", "b"},
		"diff+spill-dir":  {"-diff", "-spill-dir", "d", "a.json", "b.json"},
		"diff+timeline":   {"-diff", "-timeline", "t.json", "a.json", "b.json"},
		"diff+attr":       {"-diff", "-attr", "x.json", "a.json", "b.json"},
		"one-arg":         {"-diff", "a.json"},
		"three-args":      {"-diff", "a.json", "b.json", "c.json"},
		"no-args":         {"-diff-spill"},
		"negative-rel":    {"-diff", "-diff-rel", "-1", "a.json", "b.json"},
		"negative-abs":    {"-diff", "-diff-abs", "-5", "a.json", "b.json"},
	} {
		t.Run(name, func(t *testing.T) {
			stdout, stderr, code := runBin(t, args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstdout: %s\nstderr: %s", code, stdout, stderr)
			}
		})
	}
}

// TestDiffSelfRoundTrip is the end-to-end CLI path: two attributions of the
// same deterministic workload, diffed by the binary, must come out neutral
// with exit 0 and a single canonical JSON report on stdout.
func TestDiffSelfRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, path := range []string{a, b} {
		if _, stderr, code := runBin(t, "-workload", "chanstall", "-log=false", "-attr", path); code != 0 {
			t.Fatalf("attr run exit %d\nstderr: %s", code, stderr)
		}
	}
	stdout, stderr, code := runBin(t, "-diff", a, b)
	if code != 0 {
		t.Fatalf("self-diff exit %d, want 0\nstderr: %s", code, stderr)
	}
	v := oneJSONDocument(t, stdout)
	if v["verdict"] != "neutral" {
		t.Fatalf("self-diff verdict = %v\n%s", v["verdict"], stdout)
	}
	if _, ok := v["rows"].([]any); !ok {
		t.Fatalf("rows missing: %s", stdout)
	}
	if !bytes.Contains([]byte(stderr), []byte("diff: neutral")) {
		t.Fatalf("narration missing from stderr:\n%s", stderr)
	}
}

// TestScrubRepairsSpillDir: the self-healing loop end to end through the CLI.
// A run spills crash-safe segments with the run parameters in the manifest
// Meta; the test corrupts one segment and plants commit debris; -scrub must
// re-execute the recorded run, restore the segment byte-identically, and
// leave a healthy directory.
func TestScrubRepairsSpillDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	_, stderr, code := runBin(t,
		"-workload", "chanstall", "-log=false", "-sample-every", "200",
		"-checkpoint-every", "1000", "-seg-lines", "64", "-spill-dir", dir)
	if code != 0 {
		t.Fatalf("spill run exited %d\n%s", code, stderr)
	}
	man, err := obs.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Meta["workload"] != "chanstall" || man.Meta["device"] != "s5" {
		t.Fatalf("manifest Meta does not capture the run parameters: %v", man.Meta)
	}
	first := filepath.Join(dir, man.Segments[0].File)
	clean, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.FlipByte(first, 25); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json.tmp"), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	stdout, stderr, code := runBin(t, "-scrub", "-spill-dir", dir)
	if code != 0 {
		t.Fatalf("-scrub exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	v := oneJSONDocument(t, stdout)
	if v["healthy"] != true {
		t.Fatalf("scrub verdict not healthy:\n%s", stdout)
	}
	got, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, got) {
		t.Fatal("repaired segment is not byte-identical to the original")
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("commit debris survived the scrub")
	}
	// A healthy directory scrubs clean without re-execution.
	stdout, _, code = runBin(t, "-scrub", "-spill-dir", dir)
	if code != 0 || oneJSONDocument(t, stdout)["repair"] != nil {
		t.Fatalf("rescan of healed dir: exit %d\n%s", code, stdout)
	}
}

func TestScrubFlagHygiene(t *testing.T) {
	if _, _, code := runBin(t, "-scrub"); code != 2 {
		t.Fatalf("-scrub without -spill-dir exited %d, want 2", code)
	}
	if _, _, code := runBin(t, "-scrub", "-spill-dir", "x", "-query", "track=t"); code != 2 {
		t.Fatalf("-scrub with -query exited %d, want 2", code)
	}
	if _, _, code := runBin(t, "-scrub", "-spill-dir", "x", "-timeline", "t.json"); code != 2 {
		t.Fatalf("-scrub with -timeline exited %d, want 2", code)
	}
}
