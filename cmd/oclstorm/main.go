// Command oclstorm is the load/chaos harness for fleet-mode oclmon: it
// floods a fleet with concurrent run submissions and SSE tails, optionally
// SIGKILLs a worker mid-storm through the /fleet/kill chaos hook, and
// records what the clients actually experienced — admission latency,
// stream lag, 429 pressure, and how long the fleet took to re-surface every
// run after the kill — as a BENCH-style JSON document that
// cmd/benchjson -fleet merges and -gate enforces.
//
//	go run ./cmd/oclstorm -oclmon ./oclmon -workers 2 -runs 120 -clients 16 \
//	    -kill-after 2s -out storm.json
//
// Point it at an already-running fleet with -target instead of -oclmon.
// Every metric is measured from the client side: admission latency is the
// accepted POST's round trip, stream lag is the gap between consecutive SSE
// frames on a tail (reconnecting with Last-Event-ID across failovers), and
// recovery is the window during which at least one admitted run was missing
// from the aggregated index after the kill.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

var (
	flagTarget  = flag.String("target", "", "attack an already-running fleet at this base URL (skips spawning)")
	flagOclmon  = flag.String("oclmon", "", "oclmon binary to spawn in fleet mode (required unless -target)")
	flagWorkers = flag.Int("workers", 2, "workers for the spawned fleet")
	flagRuns    = flag.Int("runs", 120, "total runs to push through the fleet")
	flagClients = flag.Int("clients", 16, "concurrent submitting clients")
	flagN       = flag.Int("n", 2000, "items per run")
	flagTenants = flag.String("tenants", "a,b", "tenants assigned round-robin to submissions")
	flagKill    = flag.Duration("kill-after", 2*time.Second, "SIGKILL one worker this long into the storm (0 disables)")
	flagOut     = flag.String("out", "", "write the JSON report here (default stdout)")
	flagTimeout = flag.Duration("timeout", 5*time.Minute, "overall storm deadline")
	flagSeed    = flag.Int64("seed", 1, "seed for the kill-target choice")
)

type storm struct {
	base   string
	client *http.Client

	mu       sync.Mutex
	admitMS  []float64 // accepted POST round trips
	gapMS    []float64 // inter-frame gaps on SSE tails
	admitted []string  // run ids in admission order
	shed429  int64
	retries  int64
	tailErrs int64
}

func (s *storm) record(dst *[]float64, v float64) {
	s.mu.Lock()
	*dst = append(*dst, v)
	s.mu.Unlock()
}

// submitOne POSTs one run, honoring 429 Retry-After (capped — this is a load
// harness, not a polite client) until admitted or the deadline passes.
func (s *storm) submitOne(tenant string, n int, deadline time.Time) (string, error) {
	for time.Now().Before(deadline) {
		t0 := time.Now()
		req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("%s/runs?n=%d", s.base, n), nil)
		if err != nil {
			return "", err
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := s.client.Do(req)
		if err != nil {
			return "", err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var out struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
				return "", fmt.Errorf("bad admit response %q", body)
			}
			s.record(&s.admitMS, float64(time.Since(t0).Microseconds())/1000)
			s.mu.Lock()
			s.admitted = append(s.admitted, out.ID)
			s.mu.Unlock()
			return out.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			s.mu.Lock()
			s.shed429++
			s.retries++
			s.mu.Unlock()
			wait := 200 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			if wait > time.Second {
				wait = time.Second
			}
			time.Sleep(wait)
		default:
			return "", fmt.Errorf("submit %d: %s", resp.StatusCode, body)
		}
	}
	return "", fmt.Errorf("deadline before admission")
}

// tail follows the run's SSE stream to its finalize frame, reconnecting with
// Last-Event-ID across drops (worker failover included) and recording
// inter-frame gaps.
func (s *storm) tail(id string, deadline time.Time) {
	last := int64(-1)
	for time.Now().Before(deadline) {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/runs/%s/events", s.base, id), nil)
		if err != nil {
			return
		}
		if last >= 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(last, 10))
		}
		resp, err := s.client.Do(req)
		if err != nil {
			s.mu.Lock()
			s.tailErrs++
			s.mu.Unlock()
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			time.Sleep(200 * time.Millisecond) // failover window: 503 + Retry-After
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		prev := time.Now()
		finalized := false
		for sc.Scan() {
			line := sc.Text()
			if line == "event: finalize" {
				finalized = true
				break
			}
			if v, ok := strings.CutPrefix(line, "id: "); ok {
				if seq, err := strconv.ParseInt(v, 10, 64); err == nil {
					now := time.Now()
					s.record(&s.gapMS, float64(now.Sub(prev).Microseconds())/1000)
					prev = now
					last = seq
				}
			}
		}
		resp.Body.Close()
		if finalized {
			return
		}
		// Stream cut mid-run (dead worker): resume from the last seen frame.
		s.mu.Lock()
		s.tailErrs++
		s.mu.Unlock()
	}
}

// index fetches the aggregated run index as id -> done.
func (s *storm) index() (map[string]bool, error) {
	resp, err := s.client.Get(s.base + "/runs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var entries []struct {
		ID   string `json:"id"`
		Done bool   `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(entries))
	for _, e := range entries {
		out[e.ID] = e.Done
	}
	return out, nil
}

// kill SIGKILLs one live worker and measures how long the fleet takes to
// re-surface every already-admitted run in the aggregated index.
func (s *storm) kill(rng *rand.Rand, deadline time.Time) (worker string, recovery time.Duration, err error) {
	resp, err := s.client.Get(s.base + "/fleet")
	if err != nil {
		return "", 0, err
	}
	var fl struct {
		Workers []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"workers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&fl)
	resp.Body.Close()
	if err != nil {
		return "", 0, err
	}
	var live []string
	for _, w := range fl.Workers {
		if w.State == "live" {
			live = append(live, w.Name)
		}
	}
	if len(live) == 0 {
		return "", 0, fmt.Errorf("no live workers to kill")
	}
	worker = live[rng.Intn(len(live))]

	s.mu.Lock()
	outstanding := append([]string(nil), s.admitted...)
	s.mu.Unlock()

	t0 := time.Now()
	kr, err := s.client.Post(s.base+"/fleet/kill?worker="+worker, "", nil)
	if err != nil {
		return worker, 0, err
	}
	io.Copy(io.Discard, kr.Body)
	kr.Body.Close()
	if kr.StatusCode != http.StatusOK {
		return worker, 0, fmt.Errorf("/fleet/kill = %d", kr.StatusCode)
	}
	var lastMissing []string
	for time.Now().Before(deadline) {
		idx, err := s.index()
		if err == nil {
			lastMissing = lastMissing[:0]
			for _, id := range outstanding {
				if _, ok := idx[id]; !ok {
					lastMissing = append(lastMissing, id)
				}
			}
			if len(lastMissing) == 0 {
				return worker, time.Since(t0), nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return worker, 0, fmt.Errorf("fleet never re-surfaced runs %v after killing %s", lastMissing, worker)
}

func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// announceRE must match only the front end's own announce line — the front
// end also relays its workers' "oclmon: listening on ..." lines to stderr,
// and tailing one of those would point the storm at a single worker.
var announceRE = regexp.MustCompile(`fleet front end listening on (http://[^\s]+)`)

// spawnFleet launches oclmon -workers and waits for its announce line.
func spawnFleet(bin string, workers, n int, spill string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin,
		"-addr", "localhost:0", "-runs", "0",
		"-workers", strconv.Itoa(workers),
		"-n", strconv.Itoa(n),
		"-spill-dir", spill,
		"-seg-lines", "256",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if m := announceRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			fmt.Fprintln(os.Stderr, "fleet:", line)
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, nil
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("fleet never announced")
	}
}

func main() {
	flag.Parse()
	deadline := time.Now().Add(*flagTimeout)

	base := *flagTarget
	if base == "" {
		if *flagOclmon == "" {
			fmt.Fprintln(os.Stderr, "oclstorm: need -target or -oclmon")
			os.Exit(2)
		}
		spill, err := os.MkdirTemp("", "oclstorm-spill")
		if err != nil {
			fmt.Fprintln(os.Stderr, "oclstorm:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(spill)
		cmd, addr, err := spawnFleet(*flagOclmon, *flagWorkers, *flagN, spill)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oclstorm:", err)
			os.Exit(1)
		}
		defer func() {
			cmd.Process.Kill()
			cmd.Wait()
		}()
		base = addr
	}

	s := &storm{base: base, client: &http.Client{Timeout: 0}}
	tenants := strings.Split(*flagTenants, ",")
	rng := rand.New(rand.NewSource(*flagSeed))

	// The storm: flagClients concurrent submitters drain a shared budget of
	// flagRuns, each admitted run immediately gets an SSE tail.
	var next int64
	var wg sync.WaitGroup
	var tails sync.WaitGroup
	stormStart := time.Now()
	for c := 0; c < *flagClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s.mu.Lock()
				mine := next
				next++
				s.mu.Unlock()
				if mine >= int64(*flagRuns) {
					return
				}
				tenant := tenants[int(mine)%len(tenants)]
				id, err := s.submitOne(tenant, *flagN, deadline)
				if err != nil {
					fmt.Fprintf(os.Stderr, "oclstorm: submit %d: %v\n", mine, err)
					return
				}
				tails.Add(1)
				go func() {
					defer tails.Done()
					s.tail(id, deadline)
				}()
			}
		}()
	}

	// Chaos: partway into the storm, SIGKILL one worker and time the
	// client-visible recovery window.
	var killedWorker string
	var recovery time.Duration
	var killErr error
	if *flagKill > 0 {
		time.Sleep(*flagKill)
		killedWorker, recovery, killErr = s.kill(rng, deadline)
		if killErr != nil {
			fmt.Fprintln(os.Stderr, "oclstorm: chaos:", killErr)
		} else {
			fmt.Fprintf(os.Stderr, "oclstorm: killed %s; fleet re-surfaced all runs in %s\n",
				killedWorker, recovery.Round(time.Millisecond))
		}
	}

	wg.Wait()
	tails.Wait()

	// Settle: every admitted run reaches done.
	var done, total int
	for time.Now().Before(deadline) {
		idx, err := s.index()
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		ids := append([]string(nil), s.admitted...)
		s.mu.Unlock()
		done, total = 0, len(ids)
		for _, id := range ids {
			if idx[id] {
				done++
			}
		}
		if done == total {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	elapsed := time.Since(stormStart)

	s.mu.Lock()
	defer s.mu.Unlock()
	derived := map[string]float64{
		"fleet-admit-p50-ms":      percentile(s.admitMS, 0.50),
		"fleet-admit-p99-ms":      percentile(s.admitMS, 0.99),
		"fleet-stream-lag-p50-ms": percentile(s.gapMS, 0.50),
		"fleet-stream-lag-p99-ms": percentile(s.gapMS, 0.99),
		"fleet-runs-admitted":     float64(len(s.admitted)),
		"fleet-runs-completed":    float64(done),
		"fleet-429-total":         float64(s.shed429),
		"fleet-tail-reconnects":   float64(s.tailErrs),
		"fleet-storm-wall-s":      elapsed.Seconds(),
	}
	if killErr == nil && killedWorker != "" {
		derived["fleet-recovery-ms"] = float64(recovery.Microseconds()) / 1000
	}
	out := struct {
		Benchmarks map[string][]map[string]float64 `json:"benchmarks"`
		Derived    map[string]float64              `json:"derived"`
	}{
		Benchmarks: map[string][]map[string]float64{
			"StormSubmit": {{
				"iterations": float64(len(s.admitMS)),
				"p50-ms":     percentile(s.admitMS, 0.50),
				"p99-ms":     percentile(s.admitMS, 0.99),
			}},
			"StormStream": {{
				"iterations": float64(len(s.gapMS)),
				"p50-ms":     percentile(s.gapMS, 0.50),
				"p99-ms":     percentile(s.gapMS, 0.99),
			}},
		},
		Derived: derived,
	}
	w := os.Stdout
	if *flagOut != "" {
		f, err := os.Create(*flagOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oclstorm:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "oclstorm:", err)
		os.Exit(1)
	}
	if done != total {
		fmt.Fprintf(os.Stderr, "oclstorm: FAIL: only %d/%d admitted runs completed before the deadline\n", done, total)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "oclstorm: %d runs admitted and completed in %s (%d 429s, %d reconnects)\n",
		total, elapsed.Round(time.Millisecond), s.shed429, s.tailErrs)
}
