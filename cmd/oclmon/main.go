// Command oclmon is the live observability service: it hosts supervised
// simulations of a stall-heavy producer/consumer design and serves their
// telemetry over HTTP while the runs are in flight — the board-monitor
// daemon analogue of the paper's host-side profiling flow.
//
//	go run ./cmd/oclmon -addr localhost:8077 -runs 2 -n 8192
//
// Every run executes under internal/supervise: per-run cycle budgets, a
// wall-clock watchdog, panic isolation, a bounded slot+queue admission path,
// and a per-workload circuit breaker. With -spill-dir the event stream is
// also committed to crash-safe NDJSON segments; on restart the server
// replays completed runs from their spill and deterministically re-executes
// interrupted ones, verifying the regenerated stream byte-for-byte against
// the durable prefix before resuming it.
//
// Endpoints:
//
//	GET  /healthz                  liveness (always 200 while serving)
//	GET  /readyz                   503 while slots+queue are saturated
//	GET  /metrics                  Prometheus text exposition (cycles, stalls,
//	                               SSE drops, supervisor counters)
//	GET  /runs                     JSON index of hosted runs
//	POST /runs?n=&cycles=&wall=    admit a run (202; 429 saturated or over
//	                               tenant quota, 503 quarantined); tenant from
//	                               X-Tenant or ?tenant=
//	GET  /runs/{id}/timeline.json  the run's event timeline (Perfetto JSON);
//	                               a consistent snapshot while still running
//	GET  /runs/{id}/attr.json      stall attribution & critical path (live)
//	GET  /runs/{id}/events         Server-Sent Events tail of the event stream;
//	                               resumes with Last-Event-ID (or ?after=N);
//	                               idle streams carry `: keepalive` comments
//	GET  /runs/{a}/diff/{b}        differential report of run b against
//	                               baseline run a: stall deltas, verdicts,
//	                               critical-path shift (?rel=&abs= thresholds)
//	POST /baselines/{workload}     ?run=ID pins a completed run as the
//	                               workload's baseline; other completed runs
//	                               then carry a verdict in /runs and an
//	                               oclmon_run_regressed gauge in /metrics
//	GET  /baselines                pinned baselines (workload -> run id)
//	GET  /runs/{id}/query?q=       indexed event query over the run's spill
//	                               (track=/name=/kind=/cycles=[a,b] grammar)
//	GET  /runs/{id}/at-cycle?n=    machine state at cycle N by deterministic
//	                               re-execution, rewound from the nearest
//	                               hash-verified spill checkpoint when one
//	                               exists (409 on divergence)
//
// With -workers N the process instead runs as a fleet front end: it spawns N
// crash-isolated worker processes (this same binary in worker mode), places
// submissions on a consistent-hash ring keyed by tenant and workload, proxies
// run traffic, aggregates /runs and /metrics, and on a worker death hands the
// corpse's spill directories to a survivor, which steals the ownership lease
// and replay-recovers the orphaned runs byte-identically, then respawns a
// replacement. The front end adds:
//
//	GET  /readyz                   200 "ready"/"degraded" with live/total
//	                               worker counts; 503 when no worker is live
//	GET  /fleet                    worker inventory and recovery stats
//	POST /fleet/kill?worker=wN     chaos hook: SIGKILL a worker
//
// The server binds before the simulations start and announces
// "oclmon: listening on http://..." on stderr, so scripts can poll the log,
// scrape, and shut the process down with SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"oclfpga/internal/fleet"
	"oclfpga/internal/kir"
	"oclfpga/internal/supervise"
)

var (
	flagAddr  = flag.String("addr", "localhost:8077", "listen address (use :0 for an ephemeral port)")
	flagRuns  = flag.Int("runs", 1, "number of simulations to submit at boot")
	flagN     = flag.Int("n", 8192, "items streamed producer -> consumer per run (~400 cycles each)")
	flagEvery = flag.Int64("sample-every", 1000, "metrics sampling interval in cycles")
	flagNoFF  = flag.Bool("no-fastforward", false, "step every cycle (slower; same telemetry bytes)")

	flagSlots   = flag.Int("slots", 2, "concurrent run slots")
	flagQueue   = flag.Int("queue", 8, "wait-queue depth behind the slots")
	flagBudget  = flag.Int64("cycle-budget", 50_000_000, "default per-run cycle budget")
	flagWall    = flag.Duration("wall-clock", 2*time.Minute, "default per-run wall-clock watchdog")
	flagBreaker = flag.Int("breaker-threshold", 3, "consecutive failures before a workload is quarantined (0 disables)")
	flagCool    = flag.Duration("breaker-cooldown", 30*time.Second, "how long a quarantined workload stays open")

	flagSpillDir    = flag.String("spill-dir", "", "root directory for crash-safe segmented spill (enables replay recovery)")
	flagSegLines    = flag.Int("seg-lines", 4096, "spill segment rotation threshold (payload lines)")
	flagSegBytes    = flag.Int64("seg-bytes", 1<<20, "spill segment rotation threshold (payload bytes)")
	flagCkpt        = flag.Int64("checkpoint-every", 0, "record a rewind checkpoint every N cycles in the spill (0 disables; speeds up /runs/{id}/at-cycle)")
	flagSpillBudget = flag.Int64("spill-budget", 0, "disk budget in bytes for the spill root (0 = unlimited; quarantined then oldest completed runs are evicted to fit)")

	flagWorkers    = flag.Int("workers", 0, "fleet mode: spawn N crash-isolated worker processes behind this front end")
	flagWorkerName = flag.String("worker-name", "", "fleet worker identity (set by the front end; implies lease-guarded spill)")
	flagLeaseTTL   = flag.Duration("lease-ttl", 10*time.Second, "spill-dir ownership lease TTL in worker mode")
	flagTenants    = flag.String("tenant-weights", "", "per-tenant admission weights, e.g. a=3,b=1 (enables the weighted quota; capacity = slots+queue)")
)

// buildWorkload is the monitored design: the stall-heavy producer/consumer
// pair from the throughput benchmark — a fast producer backing up a depth-4
// channel into a consumer whose dependent table loads serialize DRAM row
// misses. Under the congested MemConfig in buildStart, n items cost roughly
// 400 cycles each, so the default -n runs for several million cycles.
func buildWorkload(n int) *kir.Program {
	const (
		tblElems = 1 << 14
		stride1  = 1031
		stride2  = 523
	)
	p := kir.NewProgram("oclmon")
	pipe := p.AddChan("pipe", 4, kir.I32)

	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", int64(n), nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(pipe, lb.Load(src, i))
		return nil
	})

	cons := p.AddKernel("consumer", kir.SingleTask)
	tbl := cons.AddGlobal("tbl", kir.I32)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", int64(n), []kir.Val{cb.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		v := lb.ChanRead(pipe)
		w := lb.Load(tbl, lb.And(lb.Add(c[0], lb.Mul(i, lb.Ci32(stride1))), lb.Ci32(tblElems-1)))
		w2 := lb.Load(tbl, lb.And(lb.Mul(lb.Add(w, i), lb.Ci32(stride2)), lb.Ci32(tblElems-1)))
		lb.Store(dst, i, lb.Div(lb.Add(v, w2), lb.Ci32(2)))
		return []kir.Val{w2}
	})
	return p
}

// parseTenantWeights parses "a=3,b=1" into a weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant weight %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad tenant weight %q (want positive integer)", part)
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	flag.Parse()
	if *flagRuns < 0 || *flagN < 1 {
		log.Fatal("oclmon: -runs must be >= 0 and -n positive")
	}
	if *flagWorkers > 0 {
		frontendMain()
		return
	}

	weights, err := parseTenantWeights(*flagTenants)
	if err != nil {
		log.Fatalf("oclmon: -tenant-weights: %v", err)
	}
	var quota *fleet.WeightedQuota
	var supQuota supervise.TenantQuota
	if weights != nil {
		quota = fleet.NewWeightedQuota(*flagSlots+*flagQueue, fleet.QuotaOptions{Weights: weights})
		supQuota = quota
	}
	sup := supervise.New(supervise.Config{
		Slots: *flagSlots,
		Queue: *flagQueue,
		Quota: supQuota,
		Defaults: supervise.Limits{
			CycleBudget: *flagBudget,
			WallClock:   *flagWall,
		},
		Breaker: supervise.BreakerConfig{Threshold: *flagBreaker, Cooldown: *flagCool},
	})
	srv := newServer(serverConfig{
		n:           *flagN,
		sampleEvery: *flagEvery,
		noFF:        *flagNoFF,
		spillDir:    *flagSpillDir,
		segLines:    *flagSegLines,
		segBytes:    *flagSegBytes,
		ckptEvery:   *flagCkpt,
		spillBudget: *flagSpillBudget,
		workerName:  *flagWorkerName,
		leaseTTL:    *flagLeaseTTL,
		quota:       quota,
	}, sup)
	if err := srv.recoverSpills(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *flagRuns; i++ {
		if _, err := srv.submit("", "", *flagN, supervise.Limits{}, nil); err != nil {
			log.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "oclmon: listening on http://%s (%d runs)\n", ln.Addr(), len(srv.allRuns()))
	hs := &http.Server{Handler: srv.handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	// In-flight runs are abandoned, not drained: with -spill-dir their
	// durable prefixes are already on disk and the next start recovers them.
}

// frontendMain runs the fleet front end: spawn the workers (this binary in
// worker mode, inheriting the run-shape and supervision flags), serve the
// routing layer, and submit the boot runs through its own admission path so
// they are placed like any client submission.
func frontendMain() {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("oclmon: cannot locate own binary for worker spawn: %v", err)
	}
	fe := fleet.New(fleet.Config{
		Workers:   *flagWorkers,
		SpillRoot: *flagSpillDir,
		Logf:      log.Printf,
		Spawn: func(name, dir string) *exec.Cmd {
			args := []string{
				"-addr", "localhost:0", "-runs", "0",
				"-worker-name", name,
				"-n", strconv.Itoa(*flagN),
				"-sample-every", strconv.FormatInt(*flagEvery, 10),
				"-slots", strconv.Itoa(*flagSlots),
				"-queue", strconv.Itoa(*flagQueue),
				"-cycle-budget", strconv.FormatInt(*flagBudget, 10),
				"-wall-clock", flagWall.String(),
				"-breaker-threshold", strconv.Itoa(*flagBreaker),
				"-breaker-cooldown", flagCool.String(),
				"-seg-lines", strconv.Itoa(*flagSegLines),
				"-seg-bytes", strconv.FormatInt(*flagSegBytes, 10),
				"-checkpoint-every", strconv.FormatInt(*flagCkpt, 10),
				"-spill-budget", strconv.FormatInt(*flagSpillBudget, 10),
				"-lease-ttl", flagLeaseTTL.String(),
			}
			if *flagNoFF {
				args = append(args, "-no-fastforward")
			}
			if dir != "" {
				args = append(args, "-spill-dir", dir)
			}
			if *flagTenants != "" {
				args = append(args, "-tenant-weights", *flagTenants)
			}
			return exec.Command(self, args...)
		},
	})
	if err := fe.Start(); err != nil {
		log.Fatalf("oclmon: fleet start: %v", err)
	}
	defer fe.Close()

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "oclmon: fleet front end listening on http://%s (%d workers)\n", ln.Addr(), *flagWorkers)
	hs := &http.Server{Handler: fe.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	for i := 0; i < *flagRuns; i++ {
		resp, err := http.Post(fmt.Sprintf("http://%s/runs?n=%d", ln.Addr(), *flagN), "", nil)
		if err != nil {
			log.Fatalf("oclmon: boot run %d: %v", i+1, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Printf("oclmon: boot run %d refused: %s", i+1, resp.Status)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	// Workers are SIGKILLed by Close; their spills are crash-safe and the
	// next fleet start replay-recovers them.
}
