// Command oclmon is the live observability service: it hosts supervised
// simulations of a stall-heavy producer/consumer design and serves their
// telemetry over HTTP while the runs are in flight — the board-monitor
// daemon analogue of the paper's host-side profiling flow.
//
//	go run ./cmd/oclmon -addr localhost:8077 -runs 2 -n 8192
//
// Every run executes under internal/supervise: per-run cycle budgets, a
// wall-clock watchdog, panic isolation, a bounded slot+queue admission path,
// and a per-workload circuit breaker. With -spill-dir the event stream is
// also committed to crash-safe NDJSON segments; on restart the server
// replays completed runs from their spill and deterministically re-executes
// interrupted ones, verifying the regenerated stream byte-for-byte against
// the durable prefix before resuming it.
//
// Endpoints:
//
//	GET  /healthz                  liveness (always 200 while serving)
//	GET  /readyz                   503 while slots+queue are saturated
//	GET  /metrics                  Prometheus text exposition (cycles, stalls,
//	                               SSE drops, supervisor counters)
//	GET  /runs                     JSON index of hosted runs
//	POST /runs?n=&cycles=&wall=    admit a run (202; 429 saturated, 503 quarantined)
//	GET  /runs/{id}/timeline.json  the run's event timeline (Perfetto JSON);
//	                               a consistent snapshot while still running
//	GET  /runs/{id}/attr.json      stall attribution & critical path (live)
//	GET  /runs/{id}/events         Server-Sent Events tail of the event stream
//
// The server binds before the simulations start and announces
// "oclmon: listening on http://..." on stderr, so scripts can poll the log,
// scrape, and shut the process down with SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oclfpga/internal/kir"
	"oclfpga/internal/supervise"
)

var (
	flagAddr  = flag.String("addr", "localhost:8077", "listen address (use :0 for an ephemeral port)")
	flagRuns  = flag.Int("runs", 1, "number of simulations to submit at boot")
	flagN     = flag.Int("n", 8192, "items streamed producer -> consumer per run (~400 cycles each)")
	flagEvery = flag.Int64("sample-every", 1000, "metrics sampling interval in cycles")
	flagNoFF  = flag.Bool("no-fastforward", false, "step every cycle (slower; same telemetry bytes)")

	flagSlots   = flag.Int("slots", 2, "concurrent run slots")
	flagQueue   = flag.Int("queue", 8, "wait-queue depth behind the slots")
	flagBudget  = flag.Int64("cycle-budget", 50_000_000, "default per-run cycle budget")
	flagWall    = flag.Duration("wall-clock", 2*time.Minute, "default per-run wall-clock watchdog")
	flagBreaker = flag.Int("breaker-threshold", 3, "consecutive failures before a workload is quarantined (0 disables)")
	flagCool    = flag.Duration("breaker-cooldown", 30*time.Second, "how long a quarantined workload stays open")

	flagSpillDir = flag.String("spill-dir", "", "root directory for crash-safe segmented spill (enables replay recovery)")
	flagSegLines = flag.Int("seg-lines", 4096, "spill segment rotation threshold (payload lines)")
	flagSegBytes = flag.Int64("seg-bytes", 1<<20, "spill segment rotation threshold (payload bytes)")
)

// buildWorkload is the monitored design: the stall-heavy producer/consumer
// pair from the throughput benchmark — a fast producer backing up a depth-4
// channel into a consumer whose dependent table loads serialize DRAM row
// misses. Under the congested MemConfig in buildStart, n items cost roughly
// 400 cycles each, so the default -n runs for several million cycles.
func buildWorkload(n int) *kir.Program {
	const (
		tblElems = 1 << 14
		stride1  = 1031
		stride2  = 523
	)
	p := kir.NewProgram("oclmon")
	pipe := p.AddChan("pipe", 4, kir.I32)

	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", int64(n), nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(pipe, lb.Load(src, i))
		return nil
	})

	cons := p.AddKernel("consumer", kir.SingleTask)
	tbl := cons.AddGlobal("tbl", kir.I32)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", int64(n), []kir.Val{cb.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		v := lb.ChanRead(pipe)
		w := lb.Load(tbl, lb.And(lb.Add(c[0], lb.Mul(i, lb.Ci32(stride1))), lb.Ci32(tblElems-1)))
		w2 := lb.Load(tbl, lb.And(lb.Mul(lb.Add(w, i), lb.Ci32(stride2)), lb.Ci32(tblElems-1)))
		lb.Store(dst, i, lb.Div(lb.Add(v, w2), lb.Ci32(2)))
		return []kir.Val{w2}
	})
	return p
}

func main() {
	flag.Parse()
	if *flagRuns < 0 || *flagN < 1 {
		log.Fatal("oclmon: -runs must be >= 0 and -n positive")
	}
	sup := supervise.New(supervise.Config{
		Slots: *flagSlots,
		Queue: *flagQueue,
		Defaults: supervise.Limits{
			CycleBudget: *flagBudget,
			WallClock:   *flagWall,
		},
		Breaker: supervise.BreakerConfig{Threshold: *flagBreaker, Cooldown: *flagCool},
	})
	srv := newServer(serverConfig{
		n:           *flagN,
		sampleEvery: *flagEvery,
		noFF:        *flagNoFF,
		spillDir:    *flagSpillDir,
		segLines:    *flagSegLines,
		segBytes:    *flagSegBytes,
	}, sup)
	if err := srv.recoverSpills(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *flagRuns; i++ {
		if _, err := srv.submit("", *flagN, supervise.Limits{}, nil); err != nil {
			log.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "oclmon: listening on http://%s (%d runs)\n", ln.Addr(), len(srv.allRuns()))
	hs := &http.Server{Handler: srv.handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	// In-flight runs are abandoned, not drained: with -spill-dir their
	// durable prefixes are already on disk and the next start recovers them.
}
