// Command oclmon is the live observability service: it hosts one or more
// concurrent simulations of a stall-heavy producer/consumer design and serves
// their telemetry over HTTP while the runs are in flight — the board-monitor
// daemon analogue of the paper's host-side profiling flow.
//
//	go run ./cmd/oclmon -addr localhost:8077 -runs 2 -n 8192
//
// Endpoints:
//
//	GET /metrics                  Prometheus text exposition (cycles, stall
//	                              cycles by channel+direction, channel depths,
//	                              fast-forward jumps, dropped events)
//	GET /runs                     JSON index of hosted runs
//	GET /runs/{id}/timeline.json  the run's event timeline (Perfetto JSON);
//	                              a consistent snapshot while still running
//	GET /runs/{id}/attr.json      stall attribution & critical path (live)
//	GET /runs/{id}/events         Server-Sent Events tail of the event stream
//
// The server binds before the simulations start and announces
// "oclmon: listening on http://..." on stderr, so scripts can poll the log,
// scrape, and shut the process down with SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"oclfpga/internal/device"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
	"oclfpga/internal/obs/analyze"
	"oclfpga/internal/sim"
)

var (
	flagAddr  = flag.String("addr", "localhost:8077", "listen address (use :0 for an ephemeral port)")
	flagRuns  = flag.Int("runs", 1, "number of concurrent simulations to host")
	flagN     = flag.Int("n", 8192, "items streamed producer -> consumer per run (~400 cycles each)")
	flagEvery = flag.Int64("sample-every", 1000, "metrics sampling interval in cycles")
	flagNoFF  = flag.Bool("no-fastforward", false, "step every cycle (slower; same telemetry bytes)")
)

// buildWorkload is the monitored design: the stall-heavy producer/consumer
// pair from the throughput benchmark — a fast producer backing up a depth-4
// channel into a consumer whose dependent table loads serialize DRAM row
// misses. Under the congested MemConfig below, n items cost roughly 400
// cycles each, so the default -n runs for several million cycles.
func buildWorkload(n int) *kir.Program {
	const (
		tblElems = 1 << 14
		stride1  = 1031
		stride2  = 523
	)
	p := kir.NewProgram("oclmon")
	pipe := p.AddChan("pipe", 4, kir.I32)

	prod := p.AddKernel("producer", kir.SingleTask)
	src := prod.AddGlobal("src", kir.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", int64(n), nil, func(lb *kir.Builder, i kir.Val, _ []kir.Val) []kir.Val {
		lb.ChanWrite(pipe, lb.Load(src, i))
		return nil
	})

	cons := p.AddKernel("consumer", kir.SingleTask)
	tbl := cons.AddGlobal("tbl", kir.I32)
	dst := cons.AddGlobal("dst", kir.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", int64(n), []kir.Val{cb.Ci32(0)}, func(lb *kir.Builder, i kir.Val, c []kir.Val) []kir.Val {
		v := lb.ChanRead(pipe)
		w := lb.Load(tbl, lb.And(lb.Add(c[0], lb.Mul(i, lb.Ci32(stride1))), lb.Ci32(tblElems-1)))
		w2 := lb.Load(tbl, lb.And(lb.Mul(lb.Add(w, i), lb.Ci32(stride2)), lb.Ci32(tblElems-1)))
		lb.Store(dst, i, lb.Div(lb.Add(v, w2), lb.Ci32(2)))
		return []kir.Val{w2}
	})
	return p
}

// run is one hosted simulation: the machine executes on its own goroutine and
// every telemetry read goes through the liveSink's mutex-guarded copy, never
// through the machine itself, so handlers stay race-free while the sim is in
// flight. Final state (error, dropped-event count) lands in the sink when the
// goroutine retires.
type run struct {
	id       string
	workload string
	sink     *liveSink
}

func startRun(id string, n int) (*run, error) {
	d, err := hls.Compile(buildWorkload(n), device.StratixV(), hls.Options{})
	if err != nil {
		return nil, err
	}
	sink := newLiveSink("oclmon", *flagEvery)
	m := sim.New(d, sim.Options{
		DisableFastForward: *flagNoFF,
		MemConfig:          mem.Config{RowHitLat: 60, RowMissLat: 200},
		Observe:            &obs.Config{SampleEvery: *flagEvery, Sink: sink},
	})
	src, err := m.NewBuffer("src", kir.I32, n)
	if err != nil {
		return nil, err
	}
	tbl, err := m.NewBuffer("tbl", kir.I32, 1<<14)
	if err != nil {
		return nil, err
	}
	if _, err := m.NewBuffer("dst", kir.I32, n); err != nil {
		return nil, err
	}
	for i := range src.Data {
		src.Data[i] = int64(i + 1)
	}
	for i := range tbl.Data {
		tbl.Data[i] = int64(i % 97)
	}
	if _, err := m.Launch("producer", sim.Args{"src": src}); err != nil {
		return nil, err
	}
	if _, err := m.Launch("consumer", sim.Args{"tbl": tbl, "dst": m.Buffer("dst")}); err != nil {
		return nil, err
	}
	r := &run{id: id, workload: "oclmon", sink: sink}
	go func() {
		err := m.Run()
		// Timeline() finalizes the recorder, which finalizes the sink and
		// closes the SSE subscribers; do it before publishing the outcome.
		tl := m.Timeline()
		if err == nil {
			err = m.ObserveErr()
		}
		sink.retire(tl.DroppedEvents, err)
		if err != nil {
			log.Printf("run %s: %v", id, err)
		}
	}()
	return r, nil
}

func main() {
	flag.Parse()
	if *flagRuns < 1 || *flagN < 1 {
		log.Fatal("oclmon: -runs and -n must be positive")
	}
	var runs []*run
	for i := 1; i <= *flagRuns; i++ {
		r, err := startRun(fmt.Sprintf("run%d", i), *flagN)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, r)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, runs)
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, req *http.Request) {
		writeIndex(w, runs)
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		writeIndex(w, runs)
	})
	mux.HandleFunc("GET /runs/{id}/timeline.json", withRun(runs, func(w http.ResponseWriter, r *run) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteTimeline(w, r.sink.snapshot()); err != nil {
			log.Printf("timeline %s: %v", r.id, err)
		}
	}))
	mux.HandleFunc("GET /runs/{id}/attr.json", withRun(runs, func(w http.ResponseWriter, r *run) {
		w.Header().Set("Content-Type", "application/json")
		if err := analyze.WriteJSON(w, analyze.Attribute(r.sink.snapshot())); err != nil {
			log.Printf("attr %s: %v", r.id, err)
		}
	}))
	mux.HandleFunc("GET /runs/{id}/events", withRun(runs, serveEvents))

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "oclmon: listening on http://%s (%d runs)\n", ln.Addr(), len(runs))
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

// withRun resolves the {id} path value against the hosted runs.
func withRun(runs []*run, h func(http.ResponseWriter, *run)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		for _, r := range runs {
			if r.id == id {
				h(w, r)
				return
			}
		}
		http.Error(w, "unknown run "+id, http.StatusNotFound)
	}
}

func writeIndex(w http.ResponseWriter, runs []*run) {
	type entry struct {
		ID       string `json:"id"`
		Workload string `json:"workload"`
		Done     bool   `json:"done"`
		Cycle    int64  `json:"cycle"`
		Events   int    `json:"events"`
		Error    string `json:"error,omitempty"`
	}
	var out []entry
	for _, r := range runs {
		st := r.sink.stats()
		e := entry{ID: r.id, Workload: r.workload, Done: st.done, Cycle: st.cycle, Events: st.events}
		if st.err != nil {
			e.Error = st.err.Error()
		}
		out = append(out, e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Printf("index: %v", err)
	}
}

// writeMetrics emits the Prometheus text exposition. Gauge values come from
// each run's live sink, so a scrape mid-run sees the telemetry recorded so
// far; totals are monotone per run.
func writeMetrics(w http.ResponseWriter, runs []*run) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP oclmon_runs Number of hosted simulations.\n# TYPE oclmon_runs gauge\n")
	p("oclmon_runs %d\n", len(runs))
	p("# HELP oclmon_run_done Whether the run has finished (1) or is in flight (0).\n# TYPE oclmon_run_done gauge\n")
	for _, r := range runs {
		p("oclmon_run_done{run=%q} %d\n", r.id, b2i(r.sink.stats().done))
	}
	p("# HELP oclmon_cycles Last simulated cycle observed for the run.\n# TYPE oclmon_cycles gauge\n")
	for _, r := range runs {
		p("oclmon_cycles{run=%q} %d\n", r.id, r.sink.stats().cycle)
	}
	p("# HELP oclmon_events_total Timeline events recorded.\n# TYPE oclmon_events_total counter\n")
	for _, r := range runs {
		p("oclmon_events_total{run=%q} %d\n", r.id, r.sink.stats().events)
	}
	p("# HELP oclmon_samples_total Metrics samples recorded.\n# TYPE oclmon_samples_total counter\n")
	for _, r := range runs {
		p("oclmon_samples_total{run=%q} %d\n", r.id, r.sink.stats().samples)
	}
	p("# HELP oclmon_ff_jumps_total Fast-forward jumps taken.\n# TYPE oclmon_ff_jumps_total counter\n")
	for _, r := range runs {
		p("oclmon_ff_jumps_total{run=%q} %d\n", r.id, r.sink.stats().ffJumps)
	}
	p("# HELP oclmon_events_dropped_total Events refused after the timeline was finalized.\n# TYPE oclmon_events_dropped_total counter\n")
	for _, r := range runs {
		p("oclmon_events_dropped_total{run=%q} %d\n", r.id, r.sink.stats().dropped)
	}
	p("# HELP oclmon_stall_cycles_total Cycles a unit spent blocked, by channel endpoint.\n# TYPE oclmon_stall_cycles_total counter\n")
	for _, r := range runs {
		st := r.sink.stats()
		keys := make([]stallKey, 0, len(st.stall))
		for k := range st.stall {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].resource != keys[j].resource {
				return keys[i].resource < keys[j].resource
			}
			return keys[i].op < keys[j].op
		})
		for _, k := range keys {
			p("oclmon_stall_cycles_total{run=%q,chan=%q,dir=%q} %d\n", r.id, k.resource, k.op, st.stall[k])
		}
	}
	p("# HELP oclmon_channel_depth Channel occupancy at the latest metrics sample.\n# TYPE oclmon_channel_depth gauge\n")
	for _, r := range runs {
		st := r.sink.stats()
		names := make([]string, 0, len(st.depth))
		for n := range st.depth {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p("oclmon_channel_depth{run=%q,chan=%q} %d\n", r.id, n, st.depth[n])
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// serveEvents is the SSE live tail: each subscriber gets the events recorded
// from subscription onward, one JSON object per `data:` frame, then a final
// `event: finalize` frame when the run's timeline closes.
func serveEvents(w http.ResponseWriter, r *run) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ch, cancel := r.sink.subscribe()
	defer cancel()
	for msg := range ch {
		if _, err := w.Write(msg); err != nil {
			return
		}
		fl.Flush()
	}
	fmt.Fprintf(w, "event: finalize\ndata: {\"endCycle\":%d}\n\n", r.sink.stats().cycle)
	fl.Flush()
}
