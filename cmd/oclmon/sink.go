package main

import (
	"encoding/json"
	"strings"
	"sync"

	"oclfpga/internal/obs"
)

// liveSink is the obs.Sink behind every hosted run: the simulation goroutine
// streams records in through the recorder, HTTP handlers read consistent
// copies out. It keeps its own event/sample buffers — the machine's recorder
// belongs to the sim goroutine and is never touched by a handler — plus the
// running aggregates /metrics scrapes and the SSE subscriber set.
type liveSink struct {
	mu          sync.Mutex
	design      string
	sampleEvery int64

	events  []obs.Event
	ffJumps []obs.Event
	samples []obs.Sample
	cycle   int64 // latest cycle any record has reached

	stall map[stallKey]int64 // chan-stall cycles by (channel, direction)
	depth map[string]int     // channel occupancy at the latest sample

	finalized bool
	dropped   int64
	err       error

	subs       map[chan []byte]struct{}
	sseDropped int64 // frames shed to slow SSE subscribers
}

type stallKey struct{ resource, op string }

func newLiveSink(design string, sampleEvery int64) *liveSink {
	return &liveSink{
		design:      design,
		sampleEvery: sampleEvery,
		stall:       map[stallKey]int64{},
		depth:       map[string]int{},
		subs:        map[chan []byte]struct{}{},
	}
}

func (s *liveSink) Event(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Kind == obs.KindFFJump {
		s.ffJumps = append(s.ffJumps, e)
	} else {
		s.events = append(s.events, e)
	}
	if e.End > s.cycle {
		s.cycle = e.End
	}
	if e.Kind == obs.KindChanStall {
		k := stallKey{resource: strings.TrimPrefix(e.Track, "chan:"), op: e.Name}
		s.stall[k] += e.End - e.Start + 1
	}
	s.broadcast(e)
}

func (s *liveSink) Sample(smp obs.Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, smp)
	if smp.Cycle > s.cycle {
		s.cycle = smp.Cycle
	}
	for _, c := range smp.Channels {
		s.depth[c.Name] = c.Len
	}
}

func (s *liveSink) Finalize(endCycle int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil
	}
	s.finalized = true
	s.cycle = endCycle
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan []byte]struct{}{}
	return nil
}

// retire publishes the run goroutine's final outcome once the machine is done
// with the sink.
func (s *liveSink) retire(dropped int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropped = dropped
	s.err = err
}

// broadcast fans one event out to the SSE subscribers as a `data:` frame.
// Slow subscribers lose events rather than stalling the simulation: the
// channel is a bounded per-client buffer, and a full buffer drops the frame
// and counts it (oclmon_sse_dropped_total) — the sim loop never blocks on a
// stalled HTTP client. Callers hold s.mu.
func (s *liveSink) broadcast(e obs.Event) {
	if len(s.subs) == 0 {
		return
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return
	}
	msg := make([]byte, 0, len(buf)+16)
	msg = append(msg, "data: "...)
	msg = append(msg, buf...)
	msg = append(msg, "\n\n"...)
	for ch := range s.subs {
		select {
		case ch <- msg:
		default:
			s.sseDropped++
		}
	}
}

// subscribe registers an SSE tail; the returned channel closes at Finalize.
// cancel is idempotent and safe after the close.
func (s *liveSink) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 256)
	s.mu.Lock()
	if s.finalized {
		close(ch)
		s.mu.Unlock()
		return ch, func() {}
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		if _, live := s.subs[ch]; live {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}
}

// liveStats is one consistent reading of the sink's aggregates.
type liveStats struct {
	cycle      int64
	events     int
	samples    int
	ffJumps    int
	stall      map[stallKey]int64
	depth      map[string]int
	done       bool
	dropped    int64
	sseDropped int64
	err        error
}

func (s *liveSink) stats() liveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := liveStats{
		cycle:      s.cycle,
		events:     len(s.events),
		samples:    len(s.samples),
		ffJumps:    len(s.ffJumps),
		stall:      make(map[stallKey]int64, len(s.stall)),
		depth:      make(map[string]int, len(s.depth)),
		done:       s.finalized,
		dropped:    s.dropped,
		sseDropped: s.sseDropped,
		err:        s.err,
	}
	for k, v := range s.stall {
		st.stall[k] = v
	}
	for k, v := range s.depth {
		st.depth[k] = v
	}
	return st
}

// snapshot builds a timeline of everything recorded so far — the finalized
// record once the run is done, otherwise a consistent mid-run view whose
// EndCycle is the telemetry high-water mark.
func (s *liveSink) snapshot() *obs.Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &obs.Timeline{
		Design:        s.design,
		EndCycle:      s.cycle,
		DroppedEvents: s.dropped,
		Events:        append([]obs.Event(nil), s.events...),
		FFJumps:       append([]obs.Event(nil), s.ffJumps...),
	}
}
