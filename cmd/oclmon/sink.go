package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"oclfpga/internal/obs"
)

// liveSink is the obs.Sink behind every hosted run: the simulation goroutine
// streams records in through the recorder, HTTP handlers read consistent
// copies out. It keeps the event stream in append (spill) order — each event's
// index is its SSE sequence number, which is what lets a client dropped
// mid-tail resume with Last-Event-ID without duplicate or missing frames,
// even across a worker failover (the replacement worker replays the spill in
// the same order, so sequence numbers are stable by determinism). It also
// keeps the running aggregates /metrics scrapes and the SSE subscriber set.
type liveSink struct {
	mu          sync.Mutex
	design      string
	sampleEvery int64

	stream  []obs.Event // every event in arrival order; index == SSE id
	events  int         // non-FF-jump count (timeline partition sizes)
	ffJumps int
	samples []obs.Sample
	cycle   int64 // latest cycle any record has reached

	stall map[stallKey]int64 // chan-stall cycles by (channel, direction)
	depth map[string]int     // channel occupancy at the latest sample

	finalized bool
	dropped   int64
	err       error

	subs       map[chan []byte]struct{}
	sseDropped int64 // frames shed to slow SSE subscribers
}

type stallKey struct{ resource, op string }

func newLiveSink(design string, sampleEvery int64) *liveSink {
	return &liveSink{
		design:      design,
		sampleEvery: sampleEvery,
		stall:       map[stallKey]int64{},
		depth:       map[string]int{},
		subs:        map[chan []byte]struct{}{},
	}
}

func (s *liveSink) Event(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := int64(len(s.stream))
	s.stream = append(s.stream, e)
	if e.Kind == obs.KindFFJump {
		s.ffJumps++
	} else {
		s.events++
	}
	if e.End > s.cycle {
		s.cycle = e.End
	}
	if e.Kind == obs.KindChanStall {
		k := stallKey{resource: strings.TrimPrefix(e.Track, "chan:"), op: e.Name}
		s.stall[k] += e.End - e.Start + 1
	}
	s.broadcast(seq, e)
}

func (s *liveSink) Sample(smp obs.Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, smp)
	if smp.Cycle > s.cycle {
		s.cycle = smp.Cycle
	}
	for _, c := range smp.Channels {
		s.depth[c.Name] = c.Len
	}
}

func (s *liveSink) Finalize(endCycle int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil
	}
	s.finalized = true
	s.cycle = endCycle
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan []byte]struct{}{}
	return nil
}

// retire publishes the run goroutine's final outcome once the machine is done
// with the sink.
func (s *liveSink) retire(dropped int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropped = dropped
	s.err = err
}

// sseFrame renders one event as an SSE frame. The id line carries the
// event's stream sequence number so clients can resume with Last-Event-ID.
func sseFrame(seq int64, e obs.Event) []byte {
	buf, err := json.Marshal(e)
	if err != nil {
		return nil
	}
	msg := make([]byte, 0, len(buf)+32)
	msg = append(msg, fmt.Sprintf("id: %d\ndata: ", seq)...)
	msg = append(msg, buf...)
	msg = append(msg, "\n\n"...)
	return msg
}

// broadcast fans one event out to the SSE subscribers. Slow subscribers lose
// events rather than stalling the simulation: the channel is a bounded
// per-client buffer, and a full buffer drops the frame and counts it
// (oclmon_sse_dropped_total) — the sim loop never blocks on a stalled HTTP
// client. A dropped frame leaves a gap in the client's ids; reconnecting
// with Last-Event-ID replays exactly the gap. Callers hold s.mu.
func (s *liveSink) broadcast(seq int64, e obs.Event) {
	if len(s.subs) == 0 {
		return
	}
	msg := sseFrame(seq, e)
	if msg == nil {
		return
	}
	for ch := range s.subs {
		select {
		case ch <- msg:
		default:
			s.sseDropped++
		}
	}
}

// subscribe registers an SSE tail resuming after sequence number `after`
// (-1 for the full stream): the returned backlog holds the frames already
// recorded past that point, and the channel carries everything newer, with
// no duplicates or gaps between them because both are cut under one lock.
// The channel closes at Finalize. cancel is idempotent and safe after the
// close.
func (s *liveSink) subscribe(after int64) (backlog [][]byte, ch <-chan []byte, cancel func()) {
	c := make(chan []byte, 256)
	s.mu.Lock()
	if after < -1 {
		after = -1
	}
	for seq := after + 1; seq < int64(len(s.stream)); seq++ {
		if msg := sseFrame(seq, s.stream[seq]); msg != nil {
			backlog = append(backlog, msg)
		}
	}
	if s.finalized {
		close(c)
		s.mu.Unlock()
		return backlog, c, func() {}
	}
	s.subs[c] = struct{}{}
	s.mu.Unlock()
	return backlog, c, func() {
		s.mu.Lock()
		if _, live := s.subs[c]; live {
			delete(s.subs, c)
			close(c)
		}
		s.mu.Unlock()
	}
}

// series builds the metrics series recorded so far — the diff endpoint's
// evidence section. Samples are copied under the lock so the caller's view
// stays consistent while the run keeps sampling.
func (s *liveSink) series() *obs.Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &obs.Series{
		Design:      s.design,
		SampleEvery: s.sampleEvery,
		Samples:     append([]obs.Sample(nil), s.samples...),
	}
}

// liveStats is one consistent reading of the sink's aggregates.
type liveStats struct {
	cycle      int64
	events     int
	samples    int
	ffJumps    int
	stall      map[stallKey]int64
	depth      map[string]int
	done       bool
	dropped    int64
	sseDropped int64
	err        error
}

func (s *liveSink) stats() liveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := liveStats{
		cycle:      s.cycle,
		events:     s.events,
		samples:    len(s.samples),
		ffJumps:    s.ffJumps,
		stall:      make(map[stallKey]int64, len(s.stall)),
		depth:      make(map[string]int, len(s.depth)),
		done:       s.finalized,
		dropped:    s.dropped,
		sseDropped: s.sseDropped,
		err:        s.err,
	}
	for k, v := range s.stall {
		st.stall[k] = v
	}
	for k, v := range s.depth {
		st.depth[k] = v
	}
	return st
}

// snapshot builds a timeline of everything recorded so far — the finalized
// record once the run is done, otherwise a consistent mid-run view whose
// EndCycle is the telemetry high-water mark. Partitioning the unified stream
// preserves each partition's arrival order, so the bytes match the recorder's
// own Timeline exactly.
func (s *liveSink) snapshot() *obs.Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl := &obs.Timeline{
		Design:        s.design,
		EndCycle:      s.cycle,
		DroppedEvents: s.dropped,
		Events:        make([]obs.Event, 0, s.events),
		FFJumps:       make([]obs.Event, 0, s.ffJumps),
	}
	for _, e := range s.stream {
		if e.Kind == obs.KindFFJump {
			tl.FFJumps = append(tl.FFJumps, e)
		} else {
			tl.Events = append(tl.Events, e)
		}
	}
	return tl
}
