package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"oclfpga/internal/device"
	"oclfpga/internal/fleet"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
	"oclfpga/internal/obs/analyze"
	"oclfpga/internal/obs/diff"
	"oclfpga/internal/obs/query"
	"oclfpga/internal/obs/scrub"
	"oclfpga/internal/sim"
	"oclfpga/internal/supervise"
)

// serverConfig is everything the HTTP layer needs to host supervised runs.
type serverConfig struct {
	n           int   // default items per run
	sampleEvery int64 // metrics sampling interval
	noFF        bool
	spillDir    string // root directory for durable spill ("" disables)
	segLines    int    // spill segment rotation (payload lines)
	segBytes    int64  // spill segment rotation (payload bytes)
	ckptEvery   int64  // checkpoint interval in cycles (0 disables; enables fast at-cycle rewind)
	// spillBudget caps the spill root's total bytes (0 = unlimited). At boot
	// and at every admission, quarantined runs and then the oldest completed
	// ones are evicted until the root fits; live runs are never evicted.
	spillBudget int64

	// workerName is this process's fleet identity ("" = single-process
	// mode). When set, run ids are prefixed "<name>-", the spill dir is
	// guarded by an ownership lease with heartbeat renewal, and POST
	// /takeover lets the front end hand this worker a dead peer's spill dir.
	workerName string
	leaseTTL   time.Duration
	// retrySeed seeds the jittered Retry-After schedule (default: derived
	// from workerName so workers de-synchronize their clients differently).
	retrySeed int64
	// quota, when set, is the per-tenant weighted admission quota also wired
	// into the supervisor; the server only reads it for /metrics.
	quota *fleet.WeightedQuota

	// fs, when set, is the filesystem spill sinks write through — tests inject
	// an obs.FaultFS to drive the admission path into ENOSPC/EIO.
	fs obs.VFS

	// sseKeepalive is the idle interval after which an SSE tail emits a
	// `: keepalive` comment frame so proxies and clients do not time out a
	// quiet stream (a fast-forwarded run can go seconds without an event).
	// Tests inject a short interval; zero means the 15s default.
	sseKeepalive time.Duration

	// startHook, when set, replaces the workload builder — tests use it to
	// inject blocking or failing runs without compiling designs.
	startHook func(n int) func() (*sim.Machine, error)
}

// run is one hosted simulation (live, recovered, or quarantined). Telemetry
// reads go through the liveSink's mutex-guarded copies; lifecycle state is
// guarded separately here because it is written from supervisor goroutines.
type run struct {
	id        string
	workload  string
	tenant    string
	sink      *liveSink
	spill     string // this run's spill directory ("" when not spilling)
	recovered bool   // rebuilt or resumed from a spill at startup
	items     int    // workload size n — the at-cycle rewind's rebuild parameter
	// quarantinedSpill marks a run whose spill the boot scrubber could not
	// repair: the directory carries a quarantine marker and the run is hosted
	// only as a degraded verdict (no telemetry, no query surface).
	quarantinedSpill bool

	mu      sync.Mutex
	state   supervise.State
	outcome *supervise.Outcome

	// Cached baseline verdict: computing a diff walks both runs' full event
	// streams, so the result is memoized per baseline run id — /runs and
	// /metrics scrape it freely, and re-pinning the baseline invalidates it.
	diffMu      sync.Mutex
	diffBase    string
	diffVerdict diff.Verdict
}

func (r *run) setState(st supervise.State) {
	r.mu.Lock()
	r.state = st
	r.mu.Unlock()
}

func (r *run) status() (supervise.State, *supervise.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.outcome
}

// finish records the terminal outcome and retires the live sink.
func (r *run) finish(m *sim.Machine, out supervise.Outcome) {
	r.mu.Lock()
	r.state = out.State
	r.outcome = &out
	r.mu.Unlock()
	var dropped int64
	if m != nil {
		func() {
			defer func() { recover() }() // a panicked run may hold a mid-tick machine
			if m.Observed() {
				dropped = m.Timeline().DroppedEvents
			}
		}()
	}
	r.sink.retire(dropped, out.Err)
	// A failed run's sink may never have been finalized (e.g. Start errored
	// before a machine existed); close it so SSE tails terminate.
	r.sink.Finalize(r.sink.stats().cycle)
	if out.Err != nil {
		log.Printf("run %s: %s: %v", r.id, out.State, out.Err)
	}
}

// server owns the run registry and the supervisor behind it.
type server struct {
	cfg serverConfig
	sup *supervise.Supervisor

	mu     sync.Mutex
	runs   []*run
	byID   map[string]*run
	nextID int

	// baselines maps workload -> the pinned baseline run id. Runs of a
	// workload with a pinned baseline carry a diff verdict in /runs and an
	// oclmon_run_regressed gauge in /metrics once both runs complete.
	baseMu    sync.Mutex
	baselines map[string]string

	// leases are the spill-dir ownership claims this process holds (its own
	// dir plus adopted ones), renewed by a single heartbeat goroutine. Losing
	// one is fatal by design: another worker owns the bytes now.
	leaseMu       sync.Mutex
	leases        []*obs.Lease
	heartbeat     sync.Once
	heartbeatOff  sync.Once
	heartbeatDone chan struct{}

	retryMu    sync.Mutex
	retryCount int64
}

func newServer(cfg serverConfig, sup *supervise.Supervisor) *server {
	if cfg.segLines <= 0 {
		cfg.segLines = 4096
	}
	if cfg.segBytes <= 0 {
		cfg.segBytes = 1 << 20
	}
	if cfg.leaseTTL <= 0 {
		cfg.leaseTTL = 10 * time.Second
	}
	if cfg.retrySeed == 0 {
		for _, c := range cfg.workerName {
			cfg.retrySeed = cfg.retrySeed*31 + int64(c)
		}
		cfg.retrySeed++
	}
	if cfg.sseKeepalive <= 0 {
		cfg.sseKeepalive = 15 * time.Second
	}
	return &server{
		cfg: cfg, sup: sup, byID: map[string]*run{},
		baselines:     map[string]string{},
		heartbeatDone: make(chan struct{}),
	}
}

// retryAfter returns the next jittered Retry-After value (whole seconds,
// ceiling) for a 429: base one second stretched by supervise.Backoff's
// seeded jitter, a fresh seed per response, so a thundering herd of shed
// clients does not retry in lockstep and re-saturate the queue in one wave.
func (s *server) retryAfter() string {
	s.retryMu.Lock()
	seed := s.cfg.retrySeed + s.retryCount
	s.retryCount++
	s.retryMu.Unlock()
	d := supervise.Backoff{
		Base: time.Second.Nanoseconds(), Max: time.Second.Nanoseconds(),
		Jitter: 2.0, Seed: seed,
	}.Schedule(1)[0]
	return strconv.FormatInt((d+time.Second.Nanoseconds()-1)/time.Second.Nanoseconds(), 10)
}

func (s *server) addRun(r *run) {
	s.mu.Lock()
	s.runs = append(s.runs, r)
	s.byID[r.id] = r
	s.mu.Unlock()
}

func (s *server) dropRun(r *run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byID, r.id)
	for i, x := range s.runs {
		if x == r {
			s.runs = append(s.runs[:i], s.runs[i+1:]...)
			break
		}
	}
}

func (s *server) allRuns() []*run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*run(nil), s.runs...)
}

func (s *server) get(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// newID reserves the next free run id (run1, run2, ... — prefixed with the
// worker name in fleet mode so ids are globally unique across the fleet),
// skipping ids taken by recovered runs.
func (s *server) newID() string {
	prefix := ""
	if s.cfg.workerName != "" {
		prefix = s.cfg.workerName + "-"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.nextID++
		id := fmt.Sprintf("%srun%d", prefix, s.nextID)
		if _, taken := s.byID[id]; !taken {
			return id
		}
	}
}

// buildStart constructs the supervised Start closure for a fresh or resumed
// run: compile, attach the live sink (and segment spill, fanned out), build
// buffers, launch. It runs inside the supervisor worker so compile/launch
// panics are isolated like run panics. seg receives the spill sink for the
// FinalizeRetry hook.
func (s *server) buildStart(r *run, n int, resume *obs.SegmentLog, seg **obs.SegmentSink) func() (*sim.Machine, error) {
	if s.cfg.startHook != nil {
		hook := s.cfg.startHook(n)
		return func() (*sim.Machine, error) {
			r.setState(supervise.StateRunning)
			return hook()
		}
	}
	return func() (*sim.Machine, error) {
		var sink obs.Sink = r.sink
		if r.spill != "" {
			ss := *seg // fresh runs: created eagerly at admission
			if ss == nil {
				var err error
				ss, err = obs.NewResumeSink(obs.SegmentConfig{
					Dir: r.spill, Design: "oclmon", SampleEvery: s.cfg.sampleEvery,
					MaxLines: s.cfg.segLines, MaxBytes: s.cfg.segBytes, FS: s.cfg.fs,
				}, resume)
				if err != nil {
					return nil, err
				}
				*seg = ss
			}
			sink = obs.NewFanout(r.sink, ss)
		}
		m, err := s.buildMachine(n, sink)
		if err != nil {
			return nil, err
		}
		r.setState(supervise.StateRunning)
		return m, nil
	}
}

// buildMachine compiles the standard oclmon workload and stages its buffers
// and launches — the deterministic machine rebuilt identically by the
// supervisor's Start closure, crash recovery, and the at-cycle rewind
// endpoint. sink may be nil: observability is then left off entirely, which
// does not change the machine's state evolution (the recorder is strictly
// read-only), only whether it is recorded.
func (s *server) buildMachine(n int, sink obs.Sink) (*sim.Machine, error) {
	d, err := hls.Compile(buildWorkload(n), device.StratixV(), hls.Options{})
	if err != nil {
		return nil, err
	}
	var ocfg *obs.Config
	if sink != nil {
		ocfg = &obs.Config{SampleEvery: s.cfg.sampleEvery, CheckpointEvery: s.cfg.ckptEvery, Sink: sink}
	}
	m := sim.New(d, sim.Options{
		// The supervisor's cycle budget is the operative ceiling here;
		// leaving the sim's own 20M-cycle default in place would fail
		// long runs with max-cycles before the budget ever applies.
		MaxCycles:          math.MaxInt64 / 2,
		DisableFastForward: s.cfg.noFF,
		MemConfig:          mem.Config{RowHitLat: 60, RowMissLat: 200},
		Observe:            ocfg,
	})
	src, err := m.NewBuffer("src", kir.I32, n)
	if err != nil {
		return nil, err
	}
	tbl, err := m.NewBuffer("tbl", kir.I32, 1<<14)
	if err != nil {
		return nil, err
	}
	if _, err := m.NewBuffer("dst", kir.I32, n); err != nil {
		return nil, err
	}
	for i := range src.Data {
		src.Data[i] = int64(i + 1)
	}
	for i := range tbl.Data {
		tbl.Data[i] = int64(i % 97)
	}
	if _, err := m.Launch("producer", sim.Args{"src": src}); err != nil {
		return nil, err
	}
	if _, err := m.Launch("consumer", sim.Args{"tbl": tbl, "dst": m.Buffer("dst")}); err != nil {
		return nil, err
	}
	return m, nil
}

// submit admits one run through the supervisor. resume carries the durable
// prefix when re-executing a crashed run at startup or takeover (id is then
// the spill directory's name, and the spill stays in resume's directory —
// which for an adopted run lives under the dead peer's root). Shed
// submissions (ErrSaturated, ErrTenantSaturated) leave no trace in the
// registry; quarantined ones are recorded in their terminal state.
func (s *server) submit(id, tenant string, n int, lim supervise.Limits, resume *obs.SegmentLog) (*run, error) {
	if id == "" {
		id = s.newID()
	}
	if tenant == "" {
		tenant = "default"
	}
	r := &run{
		id: id, workload: "oclmon", tenant: tenant, recovered: resume != nil, items: n,
		sink:  newLiveSink("oclmon", s.cfg.sampleEvery),
		state: supervise.StateQueued,
	}
	if resume != nil {
		r.spill = resume.Dir
	} else if s.cfg.spillDir != "" {
		r.spill = filepath.Join(s.cfg.spillDir, id)
	}
	var seg *obs.SegmentSink
	if r.spill != "" && resume == nil && s.cfg.startHook == nil {
		// Admission is where the disk budget is enforced: reclaim evictable
		// spill before committing new bytes, and refuse the run (typed, so the
		// HTTP layer answers 503 backpressure) if the disk still cannot take
		// the manifest — never admit onto a disk that cannot record the run.
		s.gcSpill()
		// The spill manifest is written before the 202, making the on-disk
		// directory the durable admission record: a worker killed while this
		// run is still queued leaves a recoverable (empty-prefix) log, so a
		// takeover re-executes it instead of silently dropping acknowledged
		// work.
		// The Meta records everything a byte-identical re-execution needs:
		// the workload recipe (workload, n) and the resolved drive limits —
		// RunFor slice boundaries cut fast-forward jumps, so the recorded
		// stream depends on slice and cycle budget (supervise.Replay).
		eff := s.sup.EffectiveLimits(lim)
		ss, err := obs.NewSegmentSink(obs.SegmentConfig{
			Dir: r.spill, Design: "oclmon", SampleEvery: s.cfg.sampleEvery,
			Meta: map[string]string{
				"workload": r.workload, "n": strconv.Itoa(n), "tenant": tenant,
				"slice":        strconv.FormatInt(eff.Slice, 10),
				"cycle-budget": strconv.FormatInt(eff.CycleBudget, 10),
			},
			MaxLines: s.cfg.segLines, MaxBytes: s.cfg.segBytes, FS: s.cfg.fs,
		})
		if err != nil {
			// A half-born spill stub must not survive to be "recovered" as a
			// crashed run on the next boot.
			os.RemoveAll(r.spill)
			return nil, err
		}
		seg = ss
	}
	s.addRun(r)
	err := s.sup.Submit(supervise.Spec{
		ID: id, Workload: r.workload, Tenant: tenant, Limits: lim,
		Start: s.buildStart(r, n, resume, &seg),
		Done:  func(m *sim.Machine, out supervise.Outcome) { r.finish(m, out) },
		FinalizeRetry: func() error {
			if seg == nil {
				return errors.New("no spill sink to retry")
			}
			return seg.RetryFinalize()
		},
	})
	if errors.Is(err, supervise.ErrSaturated) || errors.Is(err, supervise.ErrTenantSaturated) {
		s.dropRun(r)
		if seg != nil && resume == nil {
			// A shed submission was never acknowledged; its eager spill stub
			// must not survive to be "recovered" as a crashed run.
			os.RemoveAll(r.spill)
		}
		return nil, err
	}
	return r, err
}

// recoverSpills claims this process's own spill root (taking the ownership
// lease in fleet mode) and replays every run recorded under it.
func (s *server) recoverSpills() error {
	if s.cfg.spillDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.spillDir, 0o777); err != nil {
		return err
	}
	if err := s.acquireLease(s.cfg.spillDir, false); err != nil {
		return err
	}
	_, err := s.recoverDir(s.cfg.spillDir)
	if err == nil {
		s.gcSpill()
	}
	return err
}

// rebuildSpill is the scrub.Rebuild hook for this server's own workload: a
// spill whose manifest says it recorded the standard oclmon workload is
// regenerated by deterministic re-execution through the repair sink, which
// accepts the stream only if every segment comes back byte-identical to its
// manifest checksum. The server must be running the same flags the spill was
// recorded under — the same contract crash recovery already relies on.
func (s *server) rebuildSpill(man *obs.Manifest, sink obs.Sink) error {
	if man.Meta["workload"] != "oclmon" {
		return fmt.Errorf("no rebuild recipe for workload %q", man.Meta["workload"])
	}
	if s.cfg.startHook != nil {
		return errors.New("runs are hook-injected; no deterministic rebuild")
	}
	n := s.cfg.n
	if v, err := strconv.Atoi(man.Meta["n"]); err == nil && v > 0 {
		n = v
	}
	m, err := s.buildMachine(n, sink)
	if err != nil {
		return err
	}
	// Re-execute under the drive limits the original run resolved to (recorded
	// in the Meta; a pre-limits spill falls back to the defaults every boot run
	// uses): the supervised original's RunFor boundaries cut fast-forward
	// jumps, so only the same slice schedule regenerates the same bytes.
	if err := supervise.Replay(limitsFromMeta(man.Meta), m); err != nil {
		return err
	}
	m.Timeline() // forces the recorder's Finalize through to the sink
	return nil
}

// limitsFromMeta restores the stream-shaping drive limits a spill was
// recorded under. Zero values (absent keys — spills from before the limits
// were persisted) resolve to the supervisor defaults downstream.
func limitsFromMeta(meta map[string]string) supervise.Limits {
	var lim supervise.Limits
	if v, err := strconv.ParseInt(meta["slice"], 10, 64); err == nil && v > 0 {
		lim.Slice = v
	}
	if v, err := strconv.ParseInt(meta["cycle-budget"], 10, 64); err == nil && v > 0 {
		lim.CycleBudget = v
	}
	return lim
}

// addQuarantined hosts an unrepairable spill as a degraded terminal run: the
// verdict is visible in /runs and /metrics (oclmon_runs_quarantined), but no
// telemetry is loaded — bytes that failed their checksums are never served.
func (s *server) addQuarantined(id, dir, reason string) {
	r := &run{
		id: id, workload: "oclmon", spill: dir, recovered: true, quarantinedSpill: true,
		sink:  newLiveSink("oclmon", s.cfg.sampleEvery),
		state: supervise.StateQuarantined,
	}
	r.outcome = &supervise.Outcome{State: supervise.StateQuarantined, Err: fmt.Errorf("spill quarantined: %s", reason)}
	r.sink.retire(0, nil)
	r.sink.Finalize(0)
	s.addRun(r)
	log.Printf("oclmon: spill %s quarantined: %s", dir, reason)
}

// gcSpill enforces the spill root's disk budget: quarantined directories are
// reclaimed first (their bytes are already untrustworthy), then the oldest
// completed runs; incomplete spills and runs still in flight are never
// evicted. An evicted run leaves the registry too — its durable record is
// gone, so continuing to serve it would outlive the evidence.
func (s *server) gcSpill() {
	if s.cfg.spillDir == "" || s.cfg.spillBudget <= 0 {
		return
	}
	rep, err := scrub.GC(s.cfg.spillDir, s.cfg.spillBudget, func(dir string) bool {
		r := s.get(filepath.Base(dir))
		if r == nil {
			return false
		}
		st, _ := r.status()
		done := st == supervise.StateCompleted || st == supervise.StateFailed || st == supervise.StateQuarantined
		return !done
	})
	if err != nil {
		log.Printf("oclmon: spill gc: %v", err)
		return
	}
	for _, e := range rep.Entries {
		if !e.Evicted {
			continue
		}
		if r := s.get(filepath.Base(e.Dir)); r != nil {
			s.dropRun(r)
		}
		log.Printf("oclmon: spill gc: evicted %s (%d bytes)", e.Dir, e.Bytes)
	}
	if rep.OverBudget {
		log.Printf("oclmon: spill gc: still over budget after eviction (%d of %d bytes) — live runs are never evicted",
			rep.BytesAfter, rep.Budget)
	}
}

// recoverDir replays the durable record of every run found under dir:
// complete logs become static, already-finalized runs; a log a crash left
// incomplete is re-executed deterministically against its durable prefix
// (the resume sink verifies byte-identity and appends the rest). It returns
// the ids of every run it registered — the takeover path reports these to
// the front end so routes move to this worker.
func (s *server) recoverDir(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		if s.get(id) != nil {
			continue // already hosted (idempotent takeover retry)
		}
		dir := filepath.Join(root, id)
		if q, ok := scrub.Quarantined(dir); ok {
			// A prior boot already judged this spill unrepairable; the verdict
			// stands until an operator repairs and unquarantines the directory
			// (obscheck -fsck -repair removes the marker on success).
			s.addQuarantined(id, dir, q.Reason)
			ids = append(ids, id)
			continue
		}
		if rep, serr := scrub.Scan(dir); serr == nil && !rep.Healthy {
			// Boot scrub: repair what we can (derived artifacts plus corrupt
			// segments via deterministic re-execution), quarantine what we
			// cannot — a damaged spill must never be served as a wrong answer.
			res, rerr := scrub.Repair(dir, s.rebuildSpill)
			if rerr != nil || !res.Healthy {
				reason := fmt.Sprintf("%d findings unrepaired", len(rep.Damage))
				if rerr != nil {
					reason = rerr.Error()
				}
				if qerr := scrub.Quarantine(dir, reason, rep.Damage, time.Now().UTC().Format(time.RFC3339)); qerr != nil {
					log.Printf("oclmon: spill %s: quarantine marker: %v", dir, qerr)
				}
				s.addQuarantined(id, dir, reason)
				ids = append(ids, id)
				continue
			}
			log.Printf("oclmon: spill %s: boot scrub repaired %d findings (%d orphans removed, %d sidecars rebuilt, %d segments re-executed)",
				dir, len(rep.Damage), len(res.RemovedOrphans), res.RebuiltSidecars, len(res.Repaired))
		}
		slog, err := obs.LoadSegments(dir)
		if err != nil {
			log.Printf("oclmon: spill %s: unrecoverable: %v", dir, err)
			continue
		}
		if slog.Manifest.Complete {
			r := &run{
				id: id, workload: slog.Manifest.Meta["workload"], spill: dir, recovered: true,
				sink:  newLiveSink(slog.Manifest.Design, slog.Manifest.SampleEvery),
				state: supervise.StateCompleted,
			}
			if v, err := strconv.Atoi(slog.Manifest.Meta["n"]); err == nil && v > 0 {
				r.items = v // at-cycle rewind needs the workload size to rebuild
			}
			if err := slog.Feed(r.sink); err != nil {
				log.Printf("oclmon: spill %s: %v", dir, err)
				continue
			}
			r.sink.Finalize(slog.Manifest.EndCycle)
			r.sink.retire(0, nil)
			s.addRun(r)
			ids = append(ids, id)
			log.Printf("oclmon: recovered completed run %s from spill (%d events to cycle %d)",
				id, len(slog.Lines), slog.Manifest.EndCycle)
			continue
		}
		n := s.cfg.n
		if v, err := strconv.Atoi(slog.Manifest.Meta["n"]); err == nil && v > 0 {
			n = v
		}
		log.Printf("oclmon: re-executing crashed run %s: verifying %d durable lines to cycle %d, then resuming",
			id, len(slog.Lines), slog.LastCycle())
		// Resume under the drive limits the original run recorded: the resume
		// sink byte-verifies the durable prefix against the re-executed
		// stream, and the stream's fast-forward jump cuts follow the slice
		// schedule those limits produce.
		if _, err := s.submit(id, slog.Manifest.Meta["tenant"], n, limitsFromMeta(slog.Manifest.Meta), slog); err != nil {
			log.Printf("oclmon: recover %s: %v", id, err)
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// acquireLease claims dir's ownership lease (fleet mode only; single-process
// oclmon has no peers to fence against) and starts the one heartbeat
// goroutine that renews every held lease. force steals a live lease — the
// takeover path uses it because the front end has already reaped the old
// holder's process, so a live-looking lease just means the corpse never got
// to say goodbye.
func (s *server) acquireLease(dir string, force bool) error {
	if s.cfg.workerName == "" {
		return nil
	}
	l, err := obs.AcquireLease(dir, s.cfg.workerName, obs.LeaseOptions{TTL: s.cfg.leaseTTL, Steal: force})
	if err != nil {
		return fmt.Errorf("lease on %s: %w", dir, err)
	}
	s.leaseMu.Lock()
	s.leases = append(s.leases, l)
	s.leaseMu.Unlock()
	s.heartbeat.Do(func() {
		go func() {
			tick := time.NewTicker(s.cfg.leaseTTL / 3)
			defer tick.Stop()
			for {
				select {
				case <-s.heartbeatDone:
					return
				case <-tick.C:
				}
				s.leaseMu.Lock()
				held := append([]*obs.Lease(nil), s.leases...)
				s.leaseMu.Unlock()
				for _, l := range held {
					if err := l.Renew(); err != nil {
						// Crash-only: another worker owns our bytes now, so
						// any further append would fork the durable history.
						log.Fatalf("oclmon: lease lost on %s: %v", l.Dir(), err)
					}
				}
			}
		}()
	})
	return nil
}

// stopLeaseHeartbeat halts lease renewal. Test teardown only: a real worker
// holds its leases until the process dies (crash-only), but an in-process
// test server outlived by its heartbeat would fatally trip over the test's
// deleted temp dirs.
func (s *server) stopLeaseHeartbeat() {
	s.heartbeatOff.Do(func() { close(s.heartbeatDone) })
}

// handleTakeover is the fleet handoff endpoint: the front end POSTs a dead
// peer's spill dir; this worker steals the lease, replay-recovers every run
// under it, and answers with the recovered ids so routing follows the data.
func (s *server) handleTakeover(w http.ResponseWriter, req *http.Request) {
	if s.cfg.workerName == "" {
		http.Error(w, "not a fleet worker", http.StatusNotFound)
		return
	}
	var in struct {
		Dir   string `json:"dir"`
		Force bool   `json:"force"`
	}
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil || in.Dir == "" {
		http.Error(w, "bad takeover request", http.StatusBadRequest)
		return
	}
	if err := s.acquireLease(in.Dir, in.Force); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	ids, err := s.recoverDir(in.Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	log.Printf("oclmon: adopted spill dir %s (%d runs)", in.Dir, len(ids))
	if ids == nil {
		ids = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{"runs": ids})
}

// handler builds the HTTP surface.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		// Liveness: the process serves while runs hang, fail, or shed —
		// that is the whole point of supervision.
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		if s.sup.Saturated() {
			http.Error(w, "saturated: run slots and wait queue full", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, req *http.Request) {
		s.writeIndex(w)
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		s.writeIndex(w)
	})
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("POST /takeover", s.handleTakeover)
	mux.HandleFunc("GET /runs/{id}/timeline.json", s.withRun(func(w http.ResponseWriter, req *http.Request, r *run) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteTimeline(w, r.sink.snapshot()); err != nil {
			log.Printf("timeline %s: %v", r.id, err)
		}
	}))
	mux.HandleFunc("GET /runs/{id}/attr.json", s.withRun(func(w http.ResponseWriter, req *http.Request, r *run) {
		w.Header().Set("Content-Type", "application/json")
		if err := analyze.WriteJSON(w, analyze.Attribute(r.sink.snapshot())); err != nil {
			log.Printf("attr %s: %v", r.id, err)
		}
	}))
	mux.HandleFunc("GET /runs/{id}/events", s.withRun(s.serveEvents))
	mux.HandleFunc("GET /runs/{id}/query", s.withRun(s.handleQuery))
	mux.HandleFunc("GET /runs/{id}/at-cycle", s.withRun(s.handleAtCycle))
	mux.HandleFunc("GET /runs/{id}/diff/{other}", s.withRun(s.handleDiff))
	mux.HandleFunc("GET /baselines", s.handleBaselines)
	mux.HandleFunc("POST /baselines/{workload}", s.handleBaselinePin)
	return mux
}

// handleDiff answers GET /runs/{a}/diff/{b} with the differential report of
// run b against baseline run a (DESIGN.md §15): per-(unit, op, resource)
// stall deltas with verdicts, the critical-path shift, and — both sinks being
// sampled on the same process — the metrics-series deltas. Live runs are
// allowed; the comparison then reflects each run's telemetry high-water mark.
// ?rel= and ?abs= override the default verdict thresholds.
func (s *server) handleDiff(w http.ResponseWriter, req *http.Request, a *run) {
	other := req.PathValue("other")
	b := s.get(other)
	if b == nil {
		http.Error(w, "unknown run "+other, http.StatusNotFound)
		return
	}
	th := diff.DefaultThresholds()
	if v := req.URL.Query().Get("rel"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 {
			http.Error(w, "bad rel", http.StatusBadRequest)
			return
		}
		th.RelPct = p
	}
	if v := req.URL.Query().Get("abs"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil || p < 0 {
			http.Error(w, "bad abs", http.StatusBadRequest)
			return
		}
		th.AbsCycles = p
	}
	rep := diff.Compare(
		analyze.Attribute(a.sink.snapshot()), analyze.Attribute(b.sink.snapshot()),
		a.sink.series(), b.sink.series(), th)
	w.Header().Set("Content-Type", "application/json")
	if err := diff.WriteReport(w, rep); err != nil {
		log.Printf("diff %s/%s: %v", a.id, b.id, err)
	}
}

// baseline returns the pinned baseline run id for a workload ("" when none).
func (s *server) baseline(workload string) string {
	s.baseMu.Lock()
	defer s.baseMu.Unlock()
	return s.baselines[workload]
}

// runVerdict is the run's cached diff verdict against its workload's pinned
// baseline. Empty when no baseline is pinned, the run is the baseline itself,
// or either side has not completed — a mid-flight comparison would flap.
func (s *server) runVerdict(r *run) diff.Verdict {
	baseID := s.baseline(r.workload)
	if baseID == "" || baseID == r.id {
		return ""
	}
	base := s.get(baseID)
	if base == nil {
		return ""
	}
	if st, _ := r.status(); st != supervise.StateCompleted {
		return ""
	}
	if st, _ := base.status(); st != supervise.StateCompleted {
		return ""
	}
	r.diffMu.Lock()
	defer r.diffMu.Unlock()
	if r.diffBase != baseID {
		rep := diff.Compare(
			analyze.Attribute(base.sink.snapshot()), analyze.Attribute(r.sink.snapshot()),
			base.sink.series(), r.sink.series(), diff.DefaultThresholds())
		r.diffBase, r.diffVerdict = baseID, rep.Verdict
	}
	return r.diffVerdict
}

// handleBaselinePin pins a completed run as its workload's comparison
// baseline: POST /baselines/{workload}?run=ID. Subsequent scrapes of /runs
// and /metrics report every other completed run of that workload as
// improved/regressed/neutral against it.
func (s *server) handleBaselinePin(w http.ResponseWriter, req *http.Request) {
	workload := req.PathValue("workload")
	id := req.URL.Query().Get("run")
	if id == "" {
		http.Error(w, "missing run parameter", http.StatusBadRequest)
		return
	}
	r := s.get(id)
	if r == nil {
		http.Error(w, "unknown run "+id, http.StatusNotFound)
		return
	}
	if r.workload != workload {
		http.Error(w, fmt.Sprintf("run %s belongs to workload %q, not %q", id, r.workload, workload), http.StatusBadRequest)
		return
	}
	if st, _ := r.status(); st != supervise.StateCompleted {
		http.Error(w, fmt.Sprintf("run %s is %s; only completed runs can be pinned", id, st), http.StatusConflict)
		return
	}
	s.baseMu.Lock()
	s.baselines[workload] = id
	s.baseMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"workload\":%q,\"run\":%q}\n", workload, id)
}

// handleBaselines lists the pinned baselines as a workload -> run id map.
func (s *server) handleBaselines(w http.ResponseWriter, req *http.Request) {
	s.baseMu.Lock()
	out := make(map[string]string, len(s.baselines))
	for k, v := range s.baselines {
		out[k] = v
	}
	s.baseMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Printf("baselines: %v", err)
	}
}

// handleQuery answers GET /runs/{id}/query?q=<query> from the run's spill
// directory via the segment index (DESIGN.md §14) — only segments whose
// sidecar index might hold matches are read, so a narrow query over a long
// run touches a few files, not the whole spill. Requires the run to be
// spilling; the live in-memory timeline is served by timeline.json instead.
func (s *server) handleQuery(w http.ResponseWriter, req *http.Request, r *run) {
	if r.spill == "" {
		http.Error(w, "run has no spill directory", http.StatusNotFound)
		return
	}
	q, err := query.ParseQuery(req.URL.Query().Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := query.Run(r.spill, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Printf("query %s: %v", r.id, err)
	}
}

// handleAtCycle answers GET /runs/{id}/at-cycle?n=N with the machine state at
// cycle N, obtained by deterministic re-execution of the run's workload. When
// the spill holds checkpoints, re-execution starts from the nearest one at or
// before N (hash-verified against the live run's recorded state — a mismatch
// is a 409, the re-execution diverged and the dump would be a lie); otherwise
// it replays from cycle 0. The hosted run itself is never touched.
func (s *server) handleAtCycle(w http.ResponseWriter, req *http.Request, r *run) {
	if s.cfg.startHook != nil {
		http.Error(w, "at-cycle unavailable: runs are hook-injected", http.StatusNotImplemented)
		return
	}
	target, err := strconv.ParseInt(req.URL.Query().Get("n"), 10, 64)
	if err != nil || target < 0 {
		http.Error(w, "bad n", http.StatusBadRequest)
		return
	}
	if r.items <= 0 {
		http.Error(w, "workload size unknown for this run", http.StatusNotFound)
		return
	}
	m, err := s.buildMachine(r.items, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.spill != "" {
		cks, err := query.Checkpoints(r.spill)
		if err == nil {
			var want *obs.Checkpoint
			for i := range cks {
				if cks[i].Cycle <= target && (want == nil || cks[i].Cycle > want.Cycle) {
					want = &cks[i]
				}
			}
			if want != nil && want.Cycle > 0 {
				if err := m.RunTo(want.Cycle); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				if m.DesignHash() != want.DesignHash || m.StateHash() != want.StateHash {
					http.Error(w, fmt.Sprintf(
						"divergent re-execution at checkpoint cycle %d (recorded state %016x, rebuilt %016x)",
						want.Cycle, want.StateHash, m.StateHash()), http.StatusConflict)
					return
				}
			}
		}
	}
	if err := m.RunTo(target); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.StateDump()); err != nil {
		log.Printf("at-cycle %s: %v", r.id, err)
	}
}

// handleSubmit is the admission path: POST /runs?n=..&cycles=..&wall=..
// answers 202 with the run id, 429 when slots+queue are full or the caller's
// tenant is over its weighted share (retry after the jittered Retry-After),
// 503 when the workload is quarantined by the circuit breaker. The tenant
// comes from the X-Tenant header (or ?tenant=), defaulting to "default".
func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	n := s.cfg.n
	var lim supervise.Limits
	q := req.URL.Query()
	tenant := req.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = q.Get("tenant")
	}
	if v := q.Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = p
	}
	if v := q.Get("cycles"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil || p < 1 {
			http.Error(w, "bad cycles", http.StatusBadRequest)
			return
		}
		lim.CycleBudget = p
	}
	if v := q.Get("wall"); v != "" {
		p, err := time.ParseDuration(v)
		if err != nil || p <= 0 {
			http.Error(w, "bad wall", http.StatusBadRequest)
			return
		}
		lim.WallClock = p
	}
	r, err := s.submit("", tenant, n, lim, nil)
	switch {
	case errors.Is(err, supervise.ErrSaturated), errors.Is(err, supervise.ErrTenantSaturated):
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, supervise.ErrQuarantined):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case obs.IsDiskFull(err):
		// ENOSPC is backpressure, not a crash: the run was refused before any
		// state changed, so the client retries once the GC (or an operator)
		// frees space.
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "spill disk full: "+err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"id\":%q}\n", r.id)
}

// withRun resolves the {id} path value against the registry.
func (s *server) withRun(h func(http.ResponseWriter, *http.Request, *run)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		if r := s.get(id); r != nil {
			h(w, req, r)
			return
		}
		http.Error(w, "unknown run "+id, http.StatusNotFound)
	}
}

func (s *server) writeIndex(w http.ResponseWriter) {
	type entry struct {
		ID        string `json:"id"`
		Workload  string `json:"workload"`
		Tenant    string `json:"tenant,omitempty"`
		State     string `json:"state"`
		Done      bool   `json:"done"`
		Recovered bool   `json:"recovered,omitempty"`
		// Quarantined marks a spill the boot scrubber could not repair; the
		// run is served as this degraded verdict only, never as telemetry.
		Quarantined bool   `json:"quarantined,omitempty"`
		Cycle       int64  `json:"cycle"`
		Events      int    `json:"events"`
		Verdict     string `json:"verdict,omitempty"`
		Error       string `json:"error,omitempty"`
	}
	out := []entry{}
	for _, r := range s.allRuns() {
		st := r.sink.stats()
		state, outcome := r.status()
		e := entry{
			ID: r.id, Workload: r.workload, Tenant: r.tenant, State: string(state), Recovered: r.recovered,
			Done:        state == supervise.StateCompleted || state == supervise.StateFailed || state == supervise.StateQuarantined,
			Quarantined: r.quarantinedSpill,
			Cycle:       st.cycle, Events: st.events,
			Verdict: string(s.runVerdict(r)),
		}
		if outcome != nil && outcome.Err != nil {
			e.Error = outcome.Err.Error()
		} else if st.err != nil {
			e.Error = st.err.Error()
		}
		out = append(out, e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Printf("index: %v", err)
	}
}

// writeMetrics emits the Prometheus text exposition: per-run telemetry from
// the live sinks plus the supervisor's admission/outcome counters.
func (s *server) writeMetrics(w http.ResponseWriter) {
	runs := s.allRuns()
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP oclmon_runs Number of hosted simulations.\n# TYPE oclmon_runs gauge\n")
	p("oclmon_runs %d\n", len(runs))

	st := s.sup.Stats()
	p("# HELP oclmon_queue_depth Submissions waiting for a run slot.\n# TYPE oclmon_queue_depth gauge\n")
	p("oclmon_queue_depth %d\n", st.Queued)
	p("# HELP oclmon_runs_running Runs currently executing.\n# TYPE oclmon_runs_running gauge\n")
	p("oclmon_runs_running %d\n", st.Running)
	p("# HELP oclmon_runs_completed_total Supervised runs that completed.\n# TYPE oclmon_runs_completed_total counter\n")
	p("oclmon_runs_completed_total %d\n", st.Completed)
	p("# HELP oclmon_runs_failed_total Supervised runs that failed (diagnosed hang, budget, watchdog, panic, sink).\n# TYPE oclmon_runs_failed_total counter\n")
	p("oclmon_runs_failed_total %d\n", st.Failed)
	p("# HELP oclmon_runs_quarantined_total Submissions refused by the circuit breaker.\n# TYPE oclmon_runs_quarantined_total counter\n")
	p("oclmon_runs_quarantined_total %d\n", st.Quarantined)
	p("# HELP oclmon_submissions_shed_total Submissions shed by admission control (429).\n# TYPE oclmon_submissions_shed_total counter\n")
	p("oclmon_submissions_shed_total %d\n", st.Shed)
	p("# HELP oclmon_run_panics_total Run goroutine panics converted to failed runs.\n# TYPE oclmon_run_panics_total counter\n")
	p("oclmon_run_panics_total %d\n", st.Panics)
	p("# HELP oclmon_submissions_tenant_shed_total Submissions refused by the per-tenant quota (429).\n# TYPE oclmon_submissions_tenant_shed_total counter\n")
	p("oclmon_submissions_tenant_shed_total %d\n", st.TenantShed)

	nq := 0
	for _, r := range runs {
		if r.quarantinedSpill {
			nq++
		}
	}
	p("# HELP oclmon_runs_quarantined Hosted runs whose spill failed the boot scrub and is quarantined on disk.\n# TYPE oclmon_runs_quarantined gauge\n")
	p("oclmon_runs_quarantined %d\n", nq)
	if s.cfg.spillDir != "" {
		var total int64
		if ents, err := os.ReadDir(s.cfg.spillDir); err == nil {
			for _, ent := range ents {
				if ent.IsDir() {
					total += scrub.DirBytes(filepath.Join(s.cfg.spillDir, ent.Name()))
				}
			}
		}
		p("# HELP oclmon_spill_bytes Bytes of durable spill under the spill root.\n# TYPE oclmon_spill_bytes gauge\n")
		p("oclmon_spill_bytes %d\n", total)
		if s.cfg.spillBudget > 0 {
			p("# HELP oclmon_spill_budget_bytes Configured disk budget for the spill root.\n# TYPE oclmon_spill_budget_bytes gauge\n")
			p("oclmon_spill_budget_bytes %d\n", s.cfg.spillBudget)
		}
	}

	if s.cfg.quota != nil {
		p("# HELP oclmon_tenant_held Admissions currently held per tenant.\n# TYPE oclmon_tenant_held gauge\n")
		for _, h := range s.cfg.quota.Snapshot() {
			p("oclmon_tenant_held{tenant=%q} %d\n", h.Tenant, h.Held)
		}
		p("# HELP oclmon_tenant_weight Configured fair-share weight per tenant.\n# TYPE oclmon_tenant_weight gauge\n")
		for _, h := range s.cfg.quota.Snapshot() {
			p("oclmon_tenant_weight{tenant=%q} %d\n", h.Tenant, h.Weight)
		}
	}

	p("# HELP oclmon_run_done Whether the run has finished (1) or is in flight (0).\n# TYPE oclmon_run_done gauge\n")
	for _, r := range runs {
		state, _ := r.status()
		done := state == supervise.StateCompleted || state == supervise.StateFailed || state == supervise.StateQuarantined
		p("oclmon_run_done{run=%q} %d\n", r.id, b2i(done))
	}
	p("# HELP oclmon_run_regressed Whether the run regressed against its workload's pinned baseline (1 regressed, 0 improved/neutral; absent without a verdict).\n# TYPE oclmon_run_regressed gauge\n")
	for _, r := range runs {
		if v := s.runVerdict(r); v != "" {
			p("oclmon_run_regressed{run=%q} %d\n", r.id, b2i(v == diff.Regressed))
		}
	}
	p("# HELP oclmon_cycles Last simulated cycle observed for the run.\n# TYPE oclmon_cycles gauge\n")
	for _, r := range runs {
		p("oclmon_cycles{run=%q} %d\n", r.id, r.sink.stats().cycle)
	}
	p("# HELP oclmon_events_total Timeline events recorded.\n# TYPE oclmon_events_total counter\n")
	for _, r := range runs {
		p("oclmon_events_total{run=%q} %d\n", r.id, r.sink.stats().events)
	}
	p("# HELP oclmon_samples_total Metrics samples recorded.\n# TYPE oclmon_samples_total counter\n")
	for _, r := range runs {
		p("oclmon_samples_total{run=%q} %d\n", r.id, r.sink.stats().samples)
	}
	p("# HELP oclmon_ff_jumps_total Fast-forward jumps taken.\n# TYPE oclmon_ff_jumps_total counter\n")
	for _, r := range runs {
		p("oclmon_ff_jumps_total{run=%q} %d\n", r.id, r.sink.stats().ffJumps)
	}
	p("# HELP oclmon_events_dropped_total Events refused after the timeline was finalized.\n# TYPE oclmon_events_dropped_total counter\n")
	for _, r := range runs {
		p("oclmon_events_dropped_total{run=%q} %d\n", r.id, r.sink.stats().dropped)
	}
	p("# HELP oclmon_sse_dropped_total SSE frames dropped to slow subscribers instead of blocking the sim loop.\n# TYPE oclmon_sse_dropped_total counter\n")
	for _, r := range runs {
		p("oclmon_sse_dropped_total{run=%q} %d\n", r.id, r.sink.stats().sseDropped)
	}
	p("# HELP oclmon_stall_cycles_total Cycles a unit spent blocked, by channel endpoint.\n# TYPE oclmon_stall_cycles_total counter\n")
	for _, r := range runs {
		st := r.sink.stats()
		keys := make([]stallKey, 0, len(st.stall))
		for k := range st.stall {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].resource != keys[j].resource {
				return keys[i].resource < keys[j].resource
			}
			return keys[i].op < keys[j].op
		})
		for _, k := range keys {
			p("oclmon_stall_cycles_total{run=%q,chan=%q,dir=%q} %d\n", r.id, k.resource, k.op, st.stall[k])
		}
	}
	p("# HELP oclmon_channel_depth Channel occupancy at the latest metrics sample.\n# TYPE oclmon_channel_depth gauge\n")
	for _, r := range runs {
		st := r.sink.stats()
		names := make([]string, 0, len(st.depth))
		for n := range st.depth {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p("oclmon_channel_depth{run=%q,chan=%q} %d\n", r.id, n, st.depth[n])
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// serveEvents is the SSE live tail. Each frame carries an `id:` line — the
// event's index in the run's deterministic append-order stream — so a client
// dropped mid-tail (or cut off by a worker failover) reconnects with
// Last-Event-ID (or ?after=N) and resumes exactly where it left off, no
// duplicate or missing frames: the backlog past that point is served first,
// then the live feed, then a final `event: finalize` frame when the run's
// timeline closes. Sequence numbers survive failover because the surviving
// worker's replay reproduces the identical stream. Slow subscribers shed
// live frames (counted in oclmon_sse_dropped_total) instead of backing up
// the sink; the resulting id gap tells the client what to re-fetch. An idle
// live stream emits a `: keepalive` comment frame every cfg.sseKeepalive so
// intermediaries do not reap the connection while a fast-forwarded run is
// between events.
func (s *server) serveEvents(w http.ResponseWriter, req *http.Request, r *run) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	after := int64(-1)
	if v := req.Header.Get("Last-Event-ID"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad Last-Event-ID", http.StatusBadRequest)
			return
		}
		after = p
	} else if v := req.URL.Query().Get("after"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad after", http.StatusBadRequest)
			return
		}
		after = p
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	backlog, ch, cancel := r.sink.subscribe(after)
	defer cancel()
	for _, msg := range backlog {
		if _, err := w.Write(msg); err != nil {
			return
		}
		fl.Flush()
	}
	ka := time.NewTicker(s.cfg.sseKeepalive)
	defer ka.Stop()
live:
	for {
		select {
		case msg, ok := <-ch:
			if !ok {
				break live
			}
			if _, err := w.Write(msg); err != nil {
				return
			}
			fl.Flush()
			ka.Reset(s.cfg.sseKeepalive)
		case <-ka.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
	fmt.Fprintf(w, "event: finalize\ndata: {\"endCycle\":%d}\n\n", r.sink.stats().cycle)
	fl.Flush()
}
