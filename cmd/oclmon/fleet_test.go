package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"oclfpga/internal/obs"
	"oclfpga/internal/supervise"
)

// sseIDs GETs the run's event stream with the given Last-Event-ID header
// ("" for a fresh tail) and returns the sequence ids of every frame received
// before the finalize frame.
func sseIDs(t *testing.T, url, lastEventID string) []int64 {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	var ids []int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: finalize" {
			break
		}
		if v, ok := strings.CutPrefix(line, "id: "); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			ids = append(ids, n)
		}
	}
	return ids
}

// TestSSEResumeWithLastEventID is the reconnect contract: a client that saw
// frames up to id K reconnects with Last-Event-ID: K and receives exactly
// the frames after K — no duplicates, no gaps — because ids index the run's
// deterministic append-order stream.
func TestSSEResumeWithLastEventID(t *testing.T) {
	sink := newLiveSink("d", 0)
	const total = 10
	for i := 0; i < total; i++ {
		sink.Event(obs.Event{Kind: obs.KindLaunch, Track: "unit:k", Name: "go", Start: int64(i), End: int64(i)})
	}
	sink.Finalize(int64(total))
	srv := newServer(serverConfig{n: 64, sampleEvery: 1000}, supervise.New(supervise.Config{Slots: 1}))
	srv.addRun(&run{id: "sse", workload: "oclmon", sink: sink, state: supervise.StateCompleted})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	url := ts.URL + "/runs/sse/events"

	// A fresh tail sees the full stream, ids 0..9 in order.
	full := sseIDs(t, url, "")
	if len(full) != total {
		t.Fatalf("full tail got %d frames, want %d: %v", len(full), total, full)
	}
	for i, id := range full {
		if id != int64(i) {
			t.Fatalf("full tail ids out of order: %v", full)
		}
	}

	// Resume mid-stream: exactly the frames after the last-seen id.
	for _, after := range []int64{0, 4, 8} {
		got := sseIDs(t, url, strconv.FormatInt(after, 10))
		if len(got) != total-int(after)-1 {
			t.Fatalf("resume after %d got %d frames: %v", after, len(got), got)
		}
		for i, id := range got {
			if id != after+1+int64(i) {
				t.Fatalf("resume after %d has dup/gap: %v", after, got)
			}
		}
	}
	// Resuming past the end yields only the finalize frame.
	if got := sseIDs(t, url, strconv.Itoa(total)); len(got) != 0 {
		t.Fatalf("resume past end got frames: %v", got)
	}
	// The ?after= query form works too (for clients that can't set headers).
	resp, err := http.Get(url + "?after=7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?after= form = %d", resp.StatusCode)
	}
	// A malformed id is rejected, not treated as a fresh tail.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Last-Event-ID", "banana")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID = %d, want 400", resp.StatusCode)
	}
}

// TestRetryAfterJitterVaries: the 429 Retry-After values are jittered (so a
// thundering herd of shed clients de-synchronizes), bounded, and
// deterministic for a given worker identity.
func TestRetryAfterJitterVaries(t *testing.T) {
	sup := supervise.New(supervise.Config{Slots: 1})
	s1 := newServer(serverConfig{n: 64, sampleEvery: 1000, workerName: "w1"}, sup)
	seen := map[string]bool{}
	var seq []string
	for i := 0; i < 32; i++ {
		v := s1.retryAfter()
		sec, err := strconv.Atoi(v)
		if err != nil || sec < 1 || sec > 3 {
			t.Fatalf("Retry-After %q out of the 1..3s jitter band", v)
		}
		seen[v] = true
		seq = append(seq, v)
	}
	if len(seen) < 2 {
		t.Fatalf("32 Retry-After values never varied: %v", seq)
	}
	// Deterministic: a same-named server replays the same schedule.
	s2 := newServer(serverConfig{n: 64, sampleEvery: 1000, workerName: "w1"}, sup)
	for i, want := range seq {
		if got := s2.retryAfter(); got != want {
			t.Fatalf("schedule diverged at %d: %q vs %q", i, got, want)
		}
	}
}

// TestTakeoverAdoptsCrashedSpill is the in-process half of the fleet handoff:
// POST /takeover hands this worker a dead peer's spill root; it steals the
// lease, replay-recovers the crashed run in place, and reports the adopted
// ids.
func TestTakeoverAdoptsCrashedSpill(t *testing.T) {
	const n = 512
	deadRoot := t.TempDir()

	// A dead peer's legacy: an incomplete spill under its root, lease held.
	seg, err := obs.NewSegmentSink(obs.SegmentConfig{
		Dir: deadRoot + "/run1", Design: "oclmon", SampleEvery: 1000,
		Meta:     map[string]string{"workload": "oclmon", "n": "512", "tenant": "acme"},
		MaxLines: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := launchWorkload(t, n, seg)
	if err := m.RunFor(40_000); err == nil {
		t.Fatal("workload finished before the crash point; raise n")
	}
	if _, err := obs.AcquireLease(deadRoot, "w-dead", obs.LeaseOptions{}); err != nil {
		t.Fatal(err)
	}

	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{
		n: 8192, sampleEvery: 1000, segLines: 64,
		spillDir: t.TempDir(), workerName: "w2",
	}, sup)
	if err := srv.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.stopLeaseHeartbeat)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Without force, the live lease refuses the takeover.
	resp, err := http.Post(ts.URL+"/takeover", "application/json",
		strings.NewReader(fmt.Sprintf("{\"dir\":%q}", deadRoot)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unforced takeover of live lease = %d, want 409", resp.StatusCode)
	}

	// Forced (the front end reaped the corpse): lease stolen, run adopted.
	resp, err = http.Post(ts.URL+"/takeover", "application/json",
		strings.NewReader(fmt.Sprintf("{\"dir\":%q,\"force\":true}", deadRoot)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Runs []string `json:"runs"`
	}
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out.Runs) != 1 || out.Runs[0] != "run1" {
		t.Fatalf("takeover = %d %+v", resp.StatusCode, out)
	}
	lease, err := obs.ReadLease(deadRoot)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Holder != "w2" {
		t.Fatalf("lease holder = %q, want w2", lease.Holder)
	}

	// The adopted run resumes in place — its spill stays under the dead
	// peer's root — and carries its recorded tenant.
	r := srv.get("run1")
	if r == nil || !r.recovered {
		t.Fatalf("adopted run not resumed: %+v", r)
	}
	if r.spill != deadRoot+"/run1" {
		t.Fatalf("adopted run spills to %q, want %q", r.spill, deadRoot+"/run1")
	}
	if r.tenant != "acme" {
		t.Fatalf("adopted run tenant = %q, want acme", r.tenant)
	}
	waitState(t, srv, "run1", supervise.StateCompleted)
	stitched, err := obs.LoadSegments(deadRoot + "/run1")
	if err != nil {
		t.Fatal(err)
	}
	if !stitched.Manifest.Complete {
		t.Fatalf("adopted run's spill not completed: %+v", stitched.Manifest)
	}

	// A repeated takeover of the same dir is idempotent: no duplicate runs.
	resp, err = http.Post(ts.URL+"/takeover", "application/json",
		strings.NewReader(fmt.Sprintf("{\"dir\":%q,\"force\":true}", deadRoot)))
	if err != nil {
		t.Fatal(err)
	}
	out.Runs = nil
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 0 {
		t.Fatalf("repeated takeover re-adopted runs: %v", out.Runs)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
