package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oclfpga/internal/device"
	"oclfpga/internal/hls"
	"oclfpga/internal/kir"
	"oclfpga/internal/mem"
	"oclfpga/internal/obs"
	"oclfpga/internal/obs/diff"
	"oclfpga/internal/obs/scrub"
	"oclfpga/internal/sim"
	"oclfpga/internal/supervise"
)

// launchWorkload builds, buffers, and launches the oclmon workload on a
// fresh machine — the same wiring as server.buildStart, shared by the
// recovery tests that need to drive a machine by hand.
func launchWorkload(t *testing.T, n int, sink obs.Sink) *sim.Machine {
	t.Helper()
	d, err := hls.Compile(buildWorkload(n), device.StratixV(), hls.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(d, sim.Options{
		MemConfig: mem.Config{RowHitLat: 60, RowMissLat: 200},
		Observe:   &obs.Config{SampleEvery: 1000, Sink: sink},
	})
	src, err := m.NewBuffer("src", kir.I32, n)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := m.NewBuffer("tbl", kir.I32, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewBuffer("dst", kir.I32, n); err != nil {
		t.Fatal(err)
	}
	for i := range src.Data {
		src.Data[i] = int64(i + 1)
	}
	for i := range tbl.Data {
		tbl.Data[i] = int64(i % 97)
	}
	if _, err := m.Launch("producer", sim.Args{"src": src}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("consumer", sim.Args{"tbl": tbl, "dst": m.Buffer("dst")}); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitState(t *testing.T, srv *server, id string, want supervise.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r := srv.get(id)
		if r != nil {
			if st, _ := r.status(); st == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	r := srv.get(id)
	if r == nil {
		t.Fatalf("run %s never appeared", id)
	}
	st, out := r.status()
	t.Fatalf("run %s stuck in %s (outcome %+v), want %s", id, st, out, want)
}

func TestOverloadShedsAndStaysResponsive(t *testing.T) {
	release := make(chan struct{})
	cfg := serverConfig{n: 64, sampleEvery: 1000}
	cfg.startHook = func(n int) func() (*sim.Machine, error) {
		return func() (*sim.Machine, error) {
			<-release
			return nil, errors.New("released")
		}
	}
	sup := supervise.New(supervise.Config{Slots: 1, Queue: 1})
	srv := newServer(cfg, sup)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	defer close(release)

	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/runs", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Slot + queue fill; the slot's run must have been picked up before the
	// queue slot frees, so poll until one run is executing.
	if got := post().StatusCode; got != http.StatusAccepted {
		t.Fatalf("first submit = %d", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sup.Stats().Running != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the run")
		}
		time.Sleep(time.Millisecond)
	}
	if got := post().StatusCode; got != http.StatusAccepted {
		t.Fatalf("queued submit = %d", got)
	}

	// Overload: the next submission sheds with 429 and a Retry-After.
	resp, err := http.Post(ts.URL+"/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The service stays responsive while saturated: /healthz is 200, /readyz
	// reports the backpressure, /metrics still serves.
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 503, "/metrics": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d (%s), want %d", path, resp.StatusCode, body, want)
		}
	}
	body := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(body, "oclmon_submissions_shed_total 1") {
		t.Fatalf("shed counter missing:\n%s", grepMetrics(body, "shed"))
	}
	// The shed submission left no registry entry behind.
	if n := len(srv.allRuns()); n != 2 {
		t.Fatalf("registry holds %d runs, want 2", n)
	}
}

func TestBreakerQuarantinesWorkload(t *testing.T) {
	cfg := serverConfig{n: 64, sampleEvery: 1000}
	cfg.startHook = func(n int) func() (*sim.Machine, error) {
		return func() (*sim.Machine, error) { return nil, errors.New("no bitstream") }
	}
	sup := supervise.New(supervise.Config{Slots: 1, Breaker: supervise.BreakerConfig{Threshold: 1, Cooldown: time.Hour}})
	srv := newServer(cfg, sup)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	waitState(t, srv, "run1", supervise.StateFailed)

	resp, err = http.Post(ts.URL+"/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined submit = %d (%s), want 503", resp.StatusCode, body)
	}
	// The quarantined run is recorded in its terminal state.
	r := srv.get("run2")
	if r == nil {
		t.Fatal("quarantined run not in registry")
	}
	if st, _ := r.status(); st != supervise.StateQuarantined {
		t.Fatalf("state = %s", st)
	}
	if !strings.Contains(scrape(t, ts.URL+"/metrics"), "oclmon_runs_quarantined_total 1") {
		t.Fatal("quarantine counter missing")
	}
}

// TestStalledSSEClientShedsFrames is the regression test for the slow-client
// path: a subscriber that never drains its buffer (a stalled HTTP client)
// loses frames — counted, never blocking the sink's caller.
func TestStalledSSEClientShedsFrames(t *testing.T) {
	sink := newLiveSink("d", 0)
	_, ch, cancel := sink.subscribe(-1)
	defer cancel()
	// Never read from ch: pump more events than the per-client buffer holds.
	// Every Event call must return promptly even with the buffer full.
	const total = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			sink.Event(obs.Event{Kind: obs.KindLaunch, Track: "unit:k", Name: "go", Start: int64(i), End: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled subscriber blocked the sink")
	}
	st := sink.stats()
	if st.sseDropped != int64(total-cap(ch)) {
		t.Fatalf("sseDropped = %d, want %d (buffer %d)", st.sseDropped, total-cap(ch), cap(ch))
	}
	if len(ch) != cap(ch) {
		t.Fatalf("buffer holds %d frames, want full %d", len(ch), cap(ch))
	}

	// The counter is exposed per run in /metrics.
	srv := newServer(serverConfig{n: 64, sampleEvery: 1000}, supervise.New(supervise.Config{Slots: 1}))
	srv.addRun(&run{id: "sse", workload: "oclmon", sink: sink, state: supervise.StateRunning})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	body := scrape(t, ts.URL+"/metrics")
	want := fmt.Sprintf("oclmon_sse_dropped_total{run=\"sse\"} %d", st.sseDropped)
	if !strings.Contains(body, want) {
		t.Fatalf("metrics missing %q:\n%s", want, grepMetrics(body, "sse"))
	}
}

// TestCrashRecoveryResumesRun is the in-process kill-and-recover path: a run
// dies mid-flight leaving sealed spill segments, a fresh server re-executes
// it deterministically against the durable prefix, and the stitched record
// is byte-identical to an uninterrupted run's.
func TestCrashRecoveryResumesRun(t *testing.T) {
	const n = 512
	root := t.TempDir()

	// "Crash": drive the workload partway with a segment spill, then abandon
	// the machine — sealed segments survive, the open .part does not count.
	seg, err := obs.NewSegmentSink(obs.SegmentConfig{
		Dir: root + "/run1", Design: "oclmon", SampleEvery: 1000,
		Meta:     map[string]string{"workload": "oclmon", "n": "512"},
		MaxLines: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := launchWorkload(t, n, seg)
	if err := m.RunFor(40_000); err == nil {
		t.Fatal("workload finished before the crash point; raise n")
	}
	slog, err := obs.LoadSegments(root + "/run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(slog.Lines) == 0 {
		t.Fatal("crash left no durable prefix; lower MaxLines")
	}

	// Recovery: a fresh server finds the incomplete spill and re-executes.
	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{n: 8192, sampleEvery: 1000, spillDir: root, segLines: 64}, sup)
	if err := srv.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	r := srv.get("run1")
	if r == nil || !r.recovered {
		t.Fatalf("run1 not resumed: %+v", r)
	}
	waitState(t, srv, "run1", supervise.StateCompleted)

	// The stitched spill replays byte-identically to an uninterrupted run.
	stitched, err := obs.LoadSegments(root + "/run1")
	if err != nil {
		t.Fatal(err)
	}
	if !stitched.Manifest.Complete {
		t.Fatalf("recovered manifest not complete: %+v", stitched.Manifest)
	}
	tl, ser, err := stitched.Replay()
	if err != nil {
		t.Fatal(err)
	}
	clean := launchWorkload(t, n, nil)
	if err := clean.Run(); err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := obs.WriteTimeline(&got, tl); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTimeline(&want, clean.Timeline()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered timeline differs from uninterrupted run")
	}
	got.Reset()
	want.Reset()
	if err := obs.WriteSeries(&got, ser); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSeries(&want, clean.Series()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered series differs from uninterrupted run")
	}

	// A third boot finds the now-complete spill and serves it statically.
	srv2 := newServer(serverConfig{n: 8192, sampleEvery: 1000, spillDir: root}, supervise.New(supervise.Config{Slots: 1}))
	if err := srv2.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	r2 := srv2.get("run1")
	if r2 == nil {
		t.Fatal("completed run not recovered on reboot")
	}
	if st, _ := r2.status(); st != supervise.StateCompleted {
		t.Fatalf("rebooted run state = %s", st)
	}
	if r2.sink.stats().cycle != stitched.Manifest.EndCycle {
		t.Fatalf("static run at cycle %d, want %d", r2.sink.stats().cycle, stitched.Manifest.EndCycle)
	}
}

// TestQueryAndAtCycleEndpoints drives a real spilled run to completion, then
// exercises the time-travel surface: the indexed event query over its spill
// and the at-cycle state dump rebuilt by checkpoint-rewound re-execution.
func TestQueryAndAtCycleEndpoints(t *testing.T) {
	root := t.TempDir()
	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{
		n: 256, sampleEvery: 1000, spillDir: root, segLines: 64, ckptEvery: 4096,
	}, sup)
	if _, err := srv.submit("", "", 256, supervise.Limits{}, nil); err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, "run1", supervise.StateCompleted)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var res struct {
		SegmentsTotal int `json:"segmentsTotal"`
		SegmentsRead  int `json:"segmentsRead"`
		Events        []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	body := scrape(t, ts.URL+"/runs/run1/query?q=kind%3Dchan-stall")
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("query response: %v\n%s", err, body)
	}
	if len(res.Events) == 0 {
		t.Fatal("no chan-stall events from the stall-heavy workload")
	}
	for _, e := range res.Events {
		if e.Kind != "chan-stall" {
			t.Fatalf("query returned kind %q", e.Kind)
		}
	}
	if res.SegmentsTotal == 0 || res.SegmentsRead > res.SegmentsTotal {
		t.Fatalf("segment accounting: read %d of %d", res.SegmentsRead, res.SegmentsTotal)
	}

	resp, err := http.Get(ts.URL + "/runs/run1/query?q=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query = %d, want 400", resp.StatusCode)
	}

	// at-cycle past the first checkpoint: the rewind path must verify the
	// recorded hash and land exactly on the requested cycle.
	var st struct {
		Design    string `json:"design"`
		Cycle     int64  `json:"cycle"`
		StateHash string `json:"stateHash"`
	}
	body = scrape(t, ts.URL+"/runs/run1/at-cycle?n=5000")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("at-cycle response: %v\n%s", err, body)
	}
	if st.Design != "oclmon" || st.Cycle != 5000 || st.StateHash == "" {
		t.Fatalf("at-cycle dump = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/runs/run1/at-cycle?n=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad at-cycle n = %d, want 400", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv := newServer(serverConfig{n: 64, sampleEvery: 1000}, supervise.New(supervise.Config{Slots: 1}))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	for _, q := range []string{"n=0", "n=x", "cycles=-1", "wall=banana"} {
		resp, err := http.Post(ts.URL+"/runs?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST /runs?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestDiffAndBaselineEndpoints drives two identical runs to completion and
// exercises the differential surface: /runs/{a}/diff/{b} must serve a valid,
// all-neutral report for deterministic twins, pinning a baseline must light
// up the verdict field in /runs and the oclmon_run_regressed gauge, and the
// error paths must answer with the right statuses.
func TestDiffAndBaselineEndpoints(t *testing.T) {
	sup := supervise.New(supervise.Config{Slots: 2})
	defer sup.Close()
	srv := newServer(serverConfig{n: 256, sampleEvery: 1000}, sup)
	for i := 0; i < 2; i++ {
		if _, err := srv.submit("", "", 256, supervise.Limits{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, srv, "run1", supervise.StateCompleted)
	waitState(t, srv, "run2", supervise.StateCompleted)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body := scrape(t, ts.URL+"/runs/run1/diff/run2")
	rep, err := diff.ReadReport(strings.NewReader(body))
	if err != nil {
		t.Fatalf("diff response: %v\n%s", err, body)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != diff.Neutral {
		t.Fatalf("identical runs diffed %q, want neutral:\n%s", rep.Verdict, body)
	}
	if len(rep.Series) == 0 {
		t.Fatal("diff of sampled runs has no series section")
	}

	// Error paths: unknown runs 404, bad thresholds 400.
	for url, want := range map[string]int{
		"/runs/run1/diff/nope":        http.StatusNotFound,
		"/runs/nope/diff/run2":        http.StatusNotFound,
		"/runs/run1/diff/run2?rel=x":  http.StatusBadRequest,
		"/runs/run1/diff/run2?abs=-1": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, want)
		}
	}

	// No baseline pinned: no verdicts anywhere.
	if strings.Contains(scrape(t, ts.URL+"/runs"), "verdict") {
		t.Fatal("verdict reported before a baseline was pinned")
	}

	// Pinning validates its input.
	for url, want := range map[string]int{
		"/baselines/oclmon":          http.StatusBadRequest, // missing run
		"/baselines/oclmon?run=nope": http.StatusNotFound,
		"/baselines/other?run=run1":  http.StatusBadRequest, // workload mismatch
	} {
		resp, err := http.Post(ts.URL+url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(ts.URL+"/baselines/oclmon?run=run1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin baseline = %d, want 200", resp.StatusCode)
	}
	var pins map[string]string
	if err := json.Unmarshal([]byte(scrape(t, ts.URL+"/baselines")), &pins); err != nil {
		t.Fatal(err)
	}
	if pins["oclmon"] != "run1" {
		t.Fatalf("baselines = %v", pins)
	}

	// run2 now carries a verdict against run1; run1 (the baseline) does not.
	var index []struct {
		ID      string `json:"id"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(scrape(t, ts.URL+"/runs")), &index); err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]string{}
	for _, e := range index {
		verdicts[e.ID] = e.Verdict
	}
	if verdicts["run2"] != string(diff.Neutral) {
		t.Fatalf("run2 verdict %q, want neutral (index %v)", verdicts["run2"], verdicts)
	}
	if verdicts["run1"] != "" {
		t.Fatalf("baseline run1 carries verdict %q", verdicts["run1"])
	}
	metrics := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "oclmon_run_regressed{run=\"run2\"} 0") {
		t.Fatalf("regressed gauge missing:\n%s", grepMetrics(metrics, "regressed"))
	}
	if strings.Contains(metrics, "oclmon_run_regressed{run=\"run1\"}") {
		t.Fatal("baseline run exposes a regressed gauge against itself")
	}
}

// TestSSEKeepaliveFrames pins the idle-stream contract: a live tail with no
// traffic receives `: keepalive` comment frames at the injected interval, and
// still terminates with the finalize frame when the run's timeline closes.
func TestSSEKeepaliveFrames(t *testing.T) {
	srv := newServer(serverConfig{n: 64, sampleEvery: 1000, sseKeepalive: 20 * time.Millisecond},
		supervise.New(supervise.Config{Slots: 1}))
	sink := newLiveSink("d", 0)
	srv.addRun(&run{id: "idle", workload: "oclmon", sink: sink, state: supervise.StateRunning})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/runs/idle/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	readLine := func() string {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		return strings.TrimRight(line, "\n")
	}
	// Two keepalives prove the ticker recurs, not a one-shot.
	keepalives := 0
	for keepalives < 2 {
		if readLine() == ": keepalive" {
			keepalives++
		}
	}

	// An event resets the idle clock and arrives as a normal frame...
	sink.Event(obs.Event{Kind: obs.KindLaunch, Track: "unit:k", Name: "go", Start: 1, End: 1})
	var sawEvent bool
	for !sawEvent {
		if l := readLine(); strings.HasPrefix(l, "id: ") {
			sawEvent = true
		}
	}
	// ...and finalize still closes the stream through the keepalive loop.
	sink.Finalize(7)
	var sawFinalize bool
	for !sawFinalize {
		if l := readLine(); l == "event: finalize" {
			sawFinalize = true
		}
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func grepMetrics(body, substr string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// completeSpilledRun hosts one run to completion on a throwaway server so the
// durability tests get a real, complete spill directory to damage.
func completeSpilledRun(t *testing.T, root string, n int) string {
	t.Helper()
	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{n: n, sampleEvery: 1000, spillDir: root, segLines: 64}, sup)
	// A small slice forces RunFor boundaries to cut fast-forward jumps, so
	// these fixtures only repair byte-identically if the scrubber restores
	// the drive limits from the spill Meta (limitsFromMeta + supervise.Replay).
	r, err := srv.submit("", "", n, supervise.Limits{Slice: 500}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, r.id, supervise.StateCompleted)
	return filepath.Join(root, r.id)
}

// TestBootScrubRepairsDamagedSpill rots a completed spill on disk (bit flip
// in a sealed segment, deleted sidecar, torn-rename debris) and reboots: the
// boot scrubber must repair the segment by deterministic re-execution,
// byte-identically, and then serve the run as if nothing happened.
func TestBootScrubRepairsDamagedSpill(t *testing.T) {
	root := t.TempDir()
	dir := completeSpilledRun(t, root, 256)
	man, err := obs.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, man.Segments[0].File)
	clean, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.FlipByte(first, 30); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, man.Segments[1].File[:len(man.Segments[1].File)-len(".ndjson")]+".idx.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json.tmp"), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{n: 256, sampleEvery: 1000, spillDir: root, segLines: 64}, sup)
	if err := srv.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	r := srv.get("run1")
	if r == nil {
		t.Fatal("repaired run not hosted")
	}
	if r.quarantinedSpill {
		t.Fatal("repairable spill was quarantined")
	}
	if st, _ := r.status(); st != supervise.StateCompleted {
		t.Fatalf("repaired run state = %s", st)
	}
	got, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, got) {
		t.Fatal("re-executed segment is not byte-identical to the original")
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("torn-rename debris survived the boot scrub")
	}
	rep, err := scrub.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("spill still unhealthy after boot scrub: %+v", rep.Damage)
	}
	if r.sink.stats().cycle != man.EndCycle {
		t.Fatalf("served run at cycle %d, want %d", r.sink.stats().cycle, man.EndCycle)
	}
}

// TestBootScrubQuarantinesUnrepairableSpill poisons the rebuild recipe and
// rots a segment: with no way to regenerate trustworthy bytes, the boot scrub
// must quarantine the spill — degraded verdict in /runs, a gauge in /metrics,
// a durable marker on disk that later boots honor without re-scrubbing — and
// never serve the corrupt telemetry.
func TestBootScrubQuarantinesUnrepairableSpill(t *testing.T) {
	root := t.TempDir()
	dir := completeSpilledRun(t, root, 256)
	manPath := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m["meta"].(map[string]any)["workload"] = "mystery"
	poisoned, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, poisoned, 0o666); err != nil {
		t.Fatal(err)
	}
	man, err := obs.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.FlipByte(filepath.Join(dir, man.Segments[0].File), 40); err != nil {
		t.Fatal(err)
	}

	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{n: 256, sampleEvery: 1000, spillDir: root, segLines: 64}, sup)
	if err := srv.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	r := srv.get("run1")
	if r == nil || !r.quarantinedSpill {
		t.Fatalf("unrepairable spill not quarantined: %+v", r)
	}
	if st, _ := r.status(); st != supervise.StateQuarantined {
		t.Fatalf("quarantined run state = %s", st)
	}
	if _, ok := scrub.Quarantined(dir); !ok {
		t.Fatal("no quarantine marker on disk")
	}

	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var idx []struct {
		ID          string `json:"id"`
		Quarantined bool   `json:"quarantined"`
		Done        bool   `json:"done"`
		Error       string `json:"error"`
	}
	body := scrape(t, ts.URL+"/runs")
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("index: %v\n%s", err, body)
	}
	if len(idx) != 1 || !idx[0].Quarantined || !idx[0].Done || !strings.Contains(idx[0].Error, "quarantined") {
		t.Fatalf("index entry = %+v", idx)
	}
	metrics := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "oclmon_runs_quarantined 1") {
		t.Fatalf("quarantine gauge missing:\n%s", grepMetrics(metrics, "quarantine"))
	}
	if grepMetrics(metrics, "oclmon_spill_bytes ") == "" {
		t.Fatalf("spill bytes gauge missing:\n%s", grepMetrics(metrics, "spill"))
	}

	// A later boot must honor the standing marker, not re-judge the bytes.
	sup2 := supervise.New(supervise.Config{Slots: 1})
	defer sup2.Close()
	srv2 := newServer(serverConfig{n: 256, sampleEvery: 1000, spillDir: root, segLines: 64}, sup2)
	if err := srv2.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	if r2 := srv2.get("run1"); r2 == nil || !r2.quarantinedSpill {
		t.Fatalf("quarantine marker not honored on reboot: %+v", r2)
	}
}

// TestSpillGCEnforcesBudget completes two spilled runs, ages one, and reboots
// under a disk budget that only fits one: the oldest completed run must be
// evicted from disk and registry; the newer one survives intact.
func TestSpillGCEnforcesBudget(t *testing.T) {
	root := t.TempDir()
	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{n: 256, sampleEvery: 1000, spillDir: root, segLines: 64}, sup)
	for _, id := range []string{"run1", "run2"} {
		if _, err := srv.submit("", "", 256, supervise.Limits{}, nil); err != nil {
			t.Fatal(err)
		}
		waitState(t, srv, id, supervise.StateCompleted)
	}
	d1, d2 := filepath.Join(root, "run1"), filepath.Join(root, "run2")
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(d1, "manifest.json"), old, old); err != nil {
		t.Fatal(err)
	}
	budget := scrub.DirBytes(d1) + scrub.DirBytes(d2) - 1

	sup2 := supervise.New(supervise.Config{Slots: 1})
	defer sup2.Close()
	srv2 := newServer(serverConfig{n: 256, sampleEvery: 1000, spillDir: root, segLines: 64, spillBudget: budget}, sup2)
	if err := srv2.recoverSpills(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(d1); !os.IsNotExist(err) {
		t.Fatal("oldest completed spill not evicted")
	}
	if srv2.get("run1") != nil {
		t.Fatal("evicted run still in the registry")
	}
	r2 := srv2.get("run2")
	if r2 == nil {
		t.Fatal("surviving run lost")
	}
	if st, _ := r2.status(); st != supervise.StateCompleted {
		t.Fatalf("surviving run state = %s", st)
	}
	ts := httptest.NewServer(srv2.handler())
	defer ts.Close()
	metrics := scrape(t, ts.URL+"/metrics")
	if grepMetrics(metrics, "oclmon_spill_budget_bytes ") == "" {
		t.Fatalf("budget gauge missing:\n%s", grepMetrics(metrics, "spill"))
	}
}

// TestSubmitDiskFullAnswers503 arms an injected filesystem fault so the
// admission-time spill creation hits ENOSPC: the submission must be refused
// with 503 + Retry-After (backpressure, not a crash), leave no registry entry
// and no half-born spill directory, and succeed once space is back.
func TestSubmitDiskFullAnswers503(t *testing.T) {
	root := t.TempDir()
	ffs := obs.NewFaultFS(obs.OSFS())
	sup := supervise.New(supervise.Config{Slots: 1})
	defer sup.Close()
	srv := newServer(serverConfig{n: 64, sampleEvery: 1000, spillDir: root, segLines: 64, fs: ffs}, sup)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	ffs.Arm(1, obs.FaultAny, obs.FaultENOSPC)
	resp, err := http.Post(ts.URL+"/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disk-full submit = %d, want 503\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on disk-full 503")
	}
	if !strings.Contains(string(body), "disk full") {
		t.Fatalf("untyped refusal: %s", body)
	}
	if n := len(srv.allRuns()); n != 0 {
		t.Fatalf("refused submission left %d registry entries", n)
	}
	if _, err := os.Stat(filepath.Join(root, "run1")); !os.IsNotExist(err) {
		t.Fatal("half-born spill directory survived the refusal")
	}

	ffs.Disarm()
	resp, err = http.Post(ts.URL+"/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit = %d, want 202", resp.StatusCode)
	}
	waitState(t, srv, acc.ID, supervise.StateCompleted)
}
