// Timestamp pitfalls (paper §3.1): why the paper prefers the HDL get_time
// pattern over persistent-kernel counters. This example reproduces the
// stale-timestamp hazard (the compiler deepening a declared depth-0 channel)
// and the counter-skew hazard (separate persistent kernels released on
// different cycles).
//
//	go run ./examples/pitfalls
package main

import (
	"fmt"
	"log"

	"oclfpga"
)

// build constructs a kernel that measures a 100-load loop with persistent
// counter timestamps; shared selects one counter kernel driving both
// channels vs one kernel per channel.
func build(shared bool) *oclfpga.Program {
	p := oclfpga.NewProgram("pitfalls")
	var tc1, tc2 *oclfpga.Chan
	if shared {
		tm := oclfpga.AddPersistentTimer(p, "tch", 2)
		tc1, tc2 = tm.Chans[0], tm.Chans[1]
	} else {
		tms := oclfpga.AddPersistentTimerPerChannel(p, "tch", 2)
		tc1, tc2 = tms[0].Chans[0], tms[1].Chans[0]
	}
	k := p.AddKernel("dut", oclfpga.SingleTask)
	x := k.AddGlobal("x", oclfpga.I32)
	z := k.AddGlobal("z", oclfpga.I64)
	b := k.NewBuilder()
	start := oclfpga.ReadTimestamp(b, tc1)
	b.ForN("i", 100, []oclfpga.Val{b.Ci32(0)}, func(lb *oclfpga.Builder, i oclfpga.Val, c []oclfpga.Val) []oclfpga.Val {
		return []oclfpga.Val{lb.Add(c[0], lb.Load(x, i))}
	})
	end := oclfpga.ReadTimestamp(b, tc2)
	b.Store(z, b.Ci32(0), b.Sub(end, start))
	return p
}

func measure(p *oclfpga.Program, opts oclfpga.CompileOptions, skew func(string, int) int64) int64 {
	d, err := oclfpga.Compile(p, oclfpga.StratixV(), opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range d.Log {
		fmt.Println("  [aoc] " + l)
	}
	m := oclfpga.NewMachine(d, oclfpga.SimOptions{AutorunSkew: skew})
	x := must(m.NewBuffer("x", oclfpga.I32, 100))
	z := must(m.NewBuffer("z", oclfpga.I64, 1))
	for i := range x.Data {
		x.Data[i] = 1
	}
	m.Step(64)
	if _, err := m.Launch("dut", oclfpga.Args{"x": x, "z": z}); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return z.Data[0]
}

func main() {
	fmt.Println("== hazard 1: channel-depth optimization makes depth-0 timestamps stale ==")
	fmt.Println("depth(0) respected:")
	good := measure(build(true), oclfpga.CompileOptions{}, nil)
	fmt.Printf("  measured loop latency: %d cycles (plausible)\n\n", good)

	fmt.Println("compiler deepens the channel:")
	bad := measure(build(true), oclfpga.CompileOptions{OptimizeChannelDepths: true}, nil)
	fmt.Printf("  measured loop latency: %d cycles (STALE — FIFO served old counter values)\n\n", bad)

	fmt.Println("== hazard 2: separate counter kernels released on different cycles ==")
	skewed := measure(build(false), oclfpga.CompileOptions{}, func(kernel string, cu int) int64 {
		if kernel == "tch1_srv" {
			return 37
		}
		return 0
	})
	fmt.Printf("  measured with 37-cycle counter skew: %d cycles (distorted by the skew)\n", skewed)
	fmt.Printf("  clean measurement was:               %d cycles\n\n", good)

	fmt.Println("The HDL get_time pattern (see examples/quickstart) has neither hazard:")
	fmt.Println("one Verilog counter, no channels, and the command argument pins the read site.")
}

// must unwraps (value, error), aborting the example on error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
