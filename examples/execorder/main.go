// Execution-order discovery (paper §3.2, Figure 2): the same matrix-vector
// multiplication written as a single-task kernel and as an NDRange kernel
// executes in completely different orders on the synthesized hardware. The
// sequence-number primitive reveals the order; timestamps confirm it and
// expose the performance consequence of the two memory access patterns.
//
//	go run ./examples/execorder
package main

import (
	"fmt"
	"log"

	"oclfpga"
)

const (
	rows = 50  // N: outer iterations / work-items
	cols = 100 // num: inner loop trip
	capN = 10  // capture window per row (the paper's i < 10)
)

// buildMatVec builds Listing 6 (single-task) or Listing 7 (NDRange) with the
// sequence + timestamp capture.
func buildMatVec(p *oclfpga.Program, mode oclfpga.Mode) (name string) {
	seq := oclfpga.AddSequencer(p, "seq_ch")
	tm := oclfpga.AddPersistentTimer(p, "time_ch", 1)

	name = "matvec_st"
	if mode == oclfpga.NDRange {
		name = "matvec_nd"
	}
	k := p.AddKernel(name, mode)
	x := k.AddGlobal("x", oclfpga.I32)
	y := k.AddGlobal("y", oclfpga.I32)
	z := k.AddGlobal("z", oclfpga.I32)
	info1 := k.AddGlobal("info1", oclfpga.I64)
	info2 := k.AddGlobal("info2", oclfpga.I32)
	info3 := k.AddGlobal("info3", oclfpga.I32)
	b := k.NewBuilder()

	body := func(ob *oclfpga.Builder, kv oclfpga.Val) {
		l := ob.Mul(kv, ob.Ci32(cols))
		sum := ob.ForN("i", cols, []oclfpga.Val{ob.Ci32(0)}, func(lb *oclfpga.Builder, iv oclfpga.Val, c []oclfpga.Val) []oclfpga.Val {
			next := lb.Add(c[0], lb.Mul(lb.Load(x, lb.Add(iv, l)), lb.Load(y, iv)))
			lb.If(lb.CmpLT(iv, lb.Ci32(capN)), func(tb *oclfpga.Builder) {
				s := oclfpga.NextSeq(tb, seq)
				tb.Store(info1, s, oclfpga.ReadTimestamp(tb, tm.Chans[0]))
				tb.Store(info2, s, kv)
				tb.Store(info3, s, iv)
			})
			return []oclfpga.Val{next}
		})
		ob.Store(z, kv, sum[0])
	}
	if mode == oclfpga.NDRange {
		body(b, b.GlobalID(0))
	} else {
		b.ForN("k", rows, nil, func(ob *oclfpga.Builder, kv oclfpga.Val, _ []oclfpga.Val) []oclfpga.Val {
			body(ob, kv)
			return nil
		})
	}
	return name
}

func run(mode oclfpga.Mode) {
	p := oclfpga.NewProgram("execorder")
	name := buildMatVec(p, mode)
	d, err := oclfpga.Compile(p, oclfpga.StratixV(), oclfpga.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m := oclfpga.NewMachine(d, oclfpga.SimOptions{})
	infoSize := rows*capN + 2
	x := must(m.NewBuffer("x", oclfpga.I32, rows*cols))
	y := must(m.NewBuffer("y", oclfpga.I32, cols))
	z := must(m.NewBuffer("z", oclfpga.I32, rows))
	i1 := must(m.NewBuffer("info1", oclfpga.I64, infoSize))
	i2 := must(m.NewBuffer("info2", oclfpga.I32, infoSize))
	i3 := must(m.NewBuffer("info3", oclfpga.I32, infoSize))
	for i := range x.Data {
		x.Data[i] = int64(i % 7)
	}
	for i := range y.Data {
		y.Data[i] = int64(i % 5)
	}
	args := oclfpga.Args{"x": x, "y": y, "z": z, "info1": i1, "info2": i2, "info3": i3}

	var u *oclfpga.LaunchedKernel
	if mode == oclfpga.NDRange {
		u, err = m.LaunchND(name, rows, args)
	} else {
		u, err = m.Launch(name, args)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s — %d cycles total\n", name, u.FinishedAt())
	fmt.Println("  Timestamp    k    i")
	for s := 51; s <= 54; s++ {
		fmt.Printf("  info_seq[%d]: %6d  %2d  %2d\n", s, i1.Data[s], i2.Data[s], i3.Data[s])
	}
}

func main() {
	fmt.Println("Figure 2 reproduction: execution/scheduling order of loop iterations")
	fmt.Println("(a) single-task: all inner iterations run before the next outer iteration")
	run(oclfpga.SingleTask)
	fmt.Println("\n(b) NDRange: work-items enter the pipeline before advancing the inner loop")
	run(oclfpga.NDRange)
	fmt.Println("\nThe different orders imply x[0],x[1],x[2],… vs x[0],x[100],x[200],…")
	fmt.Println("access patterns — and hence the different execution times above.")
}

// must unwraps (value, error), aborting the example on error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
