// Pipeline stall monitor (paper §5.1, Figure 4, Listing 9): measure the
// latency of a global-memory load inside a matrix-multiply kernel with two
// take_snapshot sites feeding stall-monitor ibuffers, then read the trace
// back through the host interface and print the latency profile.
//
//	go run ./examples/stallmonitor
package main

import (
	"fmt"
	"log"

	"oclfpga"
)

const (
	size  = 16  // matrices are size x size
	depth = 256 // trace-buffer depth: the observation window
)

func main() {
	p := oclfpga.NewProgram("stallmonitor")

	// two ibuffer instances: one per snapshot site
	ib, err := oclfpga.BuildIBuffer(p, oclfpga.IBufferConfig{
		Name: "sm", N: 2, Depth: depth, Func: oclfpga.StallMonitor,
	})
	if err != nil {
		log.Fatal(err)
	}
	ifc := oclfpga.BuildHostInterface(p, ib)

	// matmul with snapshots bracketing the data_a load (Listing 9)
	k := p.AddKernel("matmul", oclfpga.SingleTask)
	da := k.AddGlobal("data_a", oclfpga.I32)
	db := k.AddGlobal("data_b", oclfpga.I32)
	dc := k.AddGlobal("data_c", oclfpga.I32)
	b := k.NewBuilder()
	b.ForN("i", size, nil, func(bi *oclfpga.Builder, iv oclfpga.Val, _ []oclfpga.Val) []oclfpga.Val {
		bi.ForN("j", size, nil, func(bj *oclfpga.Builder, jv oclfpga.Val, _ []oclfpga.Val) []oclfpga.Val {
			acc := bj.ForN("k", size, []oclfpga.Val{bj.Ci32(0)}, func(bk *oclfpga.Builder, kv oclfpga.Val, c []oclfpga.Val) []oclfpga.Val {
				oclfpga.TakeSnapshot(bk, ib, 0, kv) // before the load
				av := bk.Load(da, bk.Add(bk.Mul(iv, bk.Ci32(size)), kv))
				oclfpga.TakeSnapshot(bk, ib, 1, av) // after the load
				bv := bk.Load(db, bk.Add(bk.Mul(kv, bk.Ci32(size)), jv))
				return []oclfpga.Val{bk.Add(c[0], bk.Mul(av, bv))}
			})
			bj.Store(dc, bj.Add(bj.Mul(iv, bj.Ci32(size)), jv), acc[0])
			return nil
		})
		return nil
	})

	d, err := oclfpga.Compile(p, oclfpga.StratixV(), oclfpga.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m := oclfpga.NewMachine(d, oclfpga.SimOptions{})
	ctl := must(oclfpga.NewController(m, ifc))

	ba := must(m.NewBuffer("data_a", oclfpga.I32, size*size))
	bb := must(m.NewBuffer("data_b", oclfpga.I32, size*size))
	bc := must(m.NewBuffer("data_c", oclfpga.I32, size*size))
	for i := range ba.Data {
		ba.Data[i] = int64(i % 13)
		bb.Data[i] = int64(i % 9)
	}

	// gdb-style session: arm both monitors, run the kernel, read back
	for id := 0; id < 2; id++ {
		if err := ctl.StartLinear(id); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := m.Launch("matmul", oclfpga.Args{"data_a": ba, "data_b": bb, "data_c": bc}); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if err := ctl.Stop(id); err != nil {
			log.Fatal(err)
		}
	}
	before, err := ctl.ReadTrace(0)
	if err != nil {
		log.Fatal(err)
	}
	after, err := ctl.ReadTrace(1)
	if err != nil {
		log.Fatal(err)
	}

	lats := oclfpga.PairLatencies(oclfpga.ValidRecords(before), oclfpga.ValidRecords(after))
	st := oclfpga.SummarizeLatencies(lats)
	fmt.Printf("data_a load latency over a %d-sample window:\n", st.N)
	fmt.Printf("  min %d, median %d, p90 %d, max %d, mean %.1f cycles\n",
		st.Min, st.P50, st.P90, st.Max, st.Mean)
	fmt.Printf("  %d stall events (latency > 2x median)\n\n", st.StallEvents)
	fmt.Println(oclfpga.NewHistogram(lats, 8, 12))
}

// must unwraps (value, error), aborting the example on error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
