// Smart watchpoints (paper §5.2, Figure 5, Listing 11): watch a memory
// location, check address bounds, and check value invariance — all on the
// fly, in hardware, gdb-style but without stopping the kernel.
//
// The kernel under test is an update loop with injected bugs: a couple of
// writes land on the watched address and a few indexes run off the end of
// the buffer (which the hardware would silently corrupt).
//
//	go run ./examples/watchpoints
package main

import (
	"fmt"
	"log"

	"oclfpga"
)

const (
	loopLen   = 64
	watchAddr = 5
	boundLo   = 0
	boundHi   = 32
)

func main() {
	p := oclfpga.NewProgram("watchpoints")

	wp, err := oclfpga.BuildIBuffer(p, oclfpga.IBufferConfig{
		Name: "wp", Depth: 64, Func: oclfpga.Watchpoint})
	if err != nil {
		log.Fatal(err)
	}
	bc, err := oclfpga.BuildIBuffer(p, oclfpga.IBufferConfig{
		Name: "bc", Depth: 64, Func: oclfpga.BoundCheck, BoundLo: boundLo, BoundHi: boundHi})
	if err != nil {
		log.Fatal(err)
	}
	wpIfc := oclfpga.BuildHostInterface(p, wp)
	bcIfc := oclfpga.BuildHostInterface(p, bc)

	// the design under test: data[addr_a[k]] = 3k+1 (Listing 11 shape)
	k := p.AddKernel("updater", oclfpga.SingleTask)
	addrA := k.AddGlobal("addr_a", oclfpga.I32)
	data := k.AddGlobal("data", oclfpga.I32)
	b := k.NewBuilder()
	oclfpga.AddWatch(b, wp, 0, b.Ci64(watchAddr)) // add_watch(0, &data[5])
	b.ForN("k", loopLen, nil, func(lb *oclfpga.Builder, kv oclfpga.Val, _ []oclfpga.Val) []oclfpga.Val {
		bv := lb.Add(lb.Mul(kv, lb.Ci32(3)), lb.Ci32(1))
		a := lb.Load(addrA, kv)
		oclfpga.MonitorAddress(lb, bc, 0, a, bv) // bound-check the index
		oclfpga.MonitorAddress(lb, wp, 0, a, bv) // watch the written address
		lb.Store(data, a, bv)
		return nil
	})

	d, err := oclfpga.Compile(p, oclfpga.StratixV(), oclfpga.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m := oclfpga.NewMachine(d, oclfpga.SimOptions{})
	wpCtl := must(oclfpga.NewController(m, wpIfc))
	bcCtl := must(oclfpga.NewController(m, bcIfc))

	ba := must(m.NewBuffer("addr_a", oclfpga.I32, loopLen))
	bd := must(m.NewBuffer("data", oclfpga.I32, boundHi))
	for i := range ba.Data {
		ba.Data[i] = int64(i % 16)
	}
	ba.Data[7] = watchAddr  // bug: aliased write to the watched location
	ba.Data[21] = watchAddr // and another one
	ba.Data[13] = 55        // bug: out-of-bounds index
	ba.Data[40] = -2        // bug: negative index

	if err := wpCtl.StartLinear(0); err != nil {
		log.Fatal(err)
	}
	if err := bcCtl.StartLinear(0); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Launch("updater", oclfpga.Args{"addr_a": ba, "data": bd}); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	if err := wpCtl.Stop(0); err != nil {
		log.Fatal(err)
	}
	recs, err := wpCtl.ReadTrace(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watchpoint hits at data[%d]:\n", watchAddr)
	for _, e := range oclfpga.DecodeWatch(oclfpga.ValidRecords(recs)) {
		fmt.Printf("  cycle %6d: write of value %d\n", e.T, e.Tag)
	}

	if err := bcCtl.Stop(0); err != nil {
		log.Fatal(err)
	}
	recs, err = bcCtl.ReadTrace(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbound-check violations outside [%d,%d):\n", boundLo, boundHi)
	for _, e := range oclfpga.DecodeWatch(oclfpga.ValidRecords(recs)) {
		fmt.Printf("  cycle %6d: index %d (value %d) — silent corruption caught\n", e.T, e.Addr, e.Tag)
	}
}

// must unwraps (value, error), aborting the example on error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
