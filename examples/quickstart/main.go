// Quickstart: compile and simulate a small design, and take your first
// hardware timestamps.
//
// It builds two kernels — an NDRange vector addition and a single-task dot
// product — instruments the dot product with the paper's preferred HDL
// timestamp pattern (get_time with a manufactured data dependence, §3.1),
// compiles for a Stratix V, runs both, and prints what the hardware did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"oclfpga"
)

func main() {
	p := oclfpga.NewProgram("quickstart")
	timer := oclfpga.AddHDLTimer(p)

	// vecadd: z[i] = x[i] + y[i], one work-item per element
	va := p.AddKernel("vecadd", oclfpga.NDRange)
	vx := va.AddGlobal("x", oclfpga.I32)
	vy := va.AddGlobal("y", oclfpga.I32)
	vz := va.AddGlobal("z", oclfpga.I32)
	vb := va.NewBuilder()
	gid := vb.GlobalID(0)
	vb.Store(vz, gid, vb.Add(vb.Load(vx, gid), vb.Load(vy, gid)))

	// dot product with timestamps bracketing the loop (Listing 4 pattern)
	dot := p.AddKernel("dot", oclfpga.SingleTask)
	dx := dot.AddGlobal("a", oclfpga.I32)
	dy := dot.AddGlobal("b", oclfpga.I32)
	dz := dot.AddGlobal("result", oclfpga.I64)
	db := dot.NewBuilder()
	start := oclfpga.GetTime(db, timer, db.Ci32(0))
	sum := db.ForN("i", 256, []oclfpga.Val{db.Ci32(0)}, func(lb *oclfpga.Builder, i oclfpga.Val, c []oclfpga.Val) []oclfpga.Val {
		return []oclfpga.Val{lb.Add(c[0], lb.Mul(lb.Load(dx, i), lb.Load(dy, i)))}
	})
	// passing sum pins the read site after the loop completes
	end := oclfpga.GetTime(db, timer, sum[0])
	db.Store(dz, db.Ci32(0), sum[0])
	db.Store(dz, db.Ci32(1), db.Sub(end, start))

	design, err := oclfpga.Compile(p, oclfpga.StratixV(), oclfpga.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== compiler log ==")
	for _, l := range design.Log {
		if strings.Contains(l, "II=") || strings.Contains(l, "fit:") {
			fmt.Println("  " + l)
		}
	}
	fmt.Printf("\nestimated Fmax: %.1f MHz, logic %.1fK ALUTs\n\n",
		design.Area.FmaxMHz, design.Area.LogicK())

	m := oclfpga.NewMachine(design, oclfpga.SimOptions{})
	const n = 256
	bx := must(m.NewBuffer("x", oclfpga.I32, n))
	by := must(m.NewBuffer("y", oclfpga.I32, n))
	bz := must(m.NewBuffer("z", oclfpga.I32, n))
	ba := must(m.NewBuffer("a", oclfpga.I32, n))
	bb := must(m.NewBuffer("b", oclfpga.I32, n))
	br := must(m.NewBuffer("result", oclfpga.I64, 2))
	for i := 0; i < n; i++ {
		bx.Data[i], by.Data[i] = int64(i), int64(n-i)
		ba.Data[i], bb.Data[i] = int64(i%10), int64(i%7)
	}

	if _, err := m.LaunchND("vecadd", n, oclfpga.Args{"x": bx, "y": by, "z": bz}); err != nil {
		log.Fatal(err)
	}
	u, err := m.Launch("dot", oclfpga.Args{"a": ba, "b": bb, "result": br})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vecadd: z[0]=%d z[%d]=%d (expect %d everywhere)\n", bz.Data[0], n-1, bz.Data[n-1], n)
	fmt.Printf("dot:    result=%d, loop latency measured on-chip: %d cycles\n", br.Data[0], br.Data[1])
	fmt.Printf("dot kernel wall time: %d cycles at %.1f MHz = %.2f us\n",
		u.FinishedAt(), design.Area.FmaxMHz, float64(u.FinishedAt())/design.Area.FmaxMHz)
}

// must unwraps (value, error), aborting the example on error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
