// Channel-bottleneck hunting (paper §5.1: "pipeline stalls may occur
// because of ... a throughput difference between a producer and a consumer
// connected through a channel").
//
// A fast producer streams into a slow consumer through a shallow channel.
// Three views of the same problem, side by side:
//
//  1. the vendor-profiler-style counters (accumulated channel stalls),
//
//  2. an ibuffer stall monitor timestamping the producer's writes — the
//     paper's fine-grained view showing *when* the backpressure bites,
//
//  3. a SignalTap-style VCD waveform of the channel occupancy.
//
//     go run ./examples/channelstall
package main

import (
	"fmt"
	"log"
	"os"

	"oclfpga"
)

const n = 256

func main() {
	p := oclfpga.NewProgram("channelstall")
	pipe := p.AddChan("pipe", 4, oclfpga.I32)

	ib, err := oclfpga.BuildIBuffer(p, oclfpga.IBufferConfig{
		Name: "mon", Depth: n, Func: oclfpga.LatencyPair, DataDepth: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	ifc := oclfpga.BuildHostInterface(p, ib)

	// producer: one value per cycle, with a snapshot per push
	prod := p.AddKernel("producer", oclfpga.SingleTask)
	src := prod.AddGlobal("src", oclfpga.I32)
	pb := prod.NewBuilder()
	pb.ForN("i", n, nil, func(lb *oclfpga.Builder, i oclfpga.Val, _ []oclfpga.Val) []oclfpga.Val {
		v := lb.Load(src, i)
		lb.ChanWrite(pipe, v)
		oclfpga.TakeSnapshot(lb, ib, 0, i) // stamps when each push completes
		return nil
	})

	// consumer: a 16-cycle divide per element — the bottleneck
	cons := p.AddKernel("consumer", oclfpga.SingleTask)
	dst := cons.AddGlobal("dst", oclfpga.I32)
	cb := cons.NewBuilder()
	cb.ForN("i", n, nil, func(lb *oclfpga.Builder, i oclfpga.Val, _ []oclfpga.Val) []oclfpga.Val {
		v := lb.ChanRead(pipe)
		sum := lb.ForN("j", 3, []oclfpga.Val{v}, func(jb *oclfpga.Builder, j oclfpga.Val, c []oclfpga.Val) []oclfpga.Val {
			return []oclfpga.Val{jb.Div(jb.Mul(c[0], jb.Ci32(7)), jb.Ci32(3))}
		})
		lb.Store(dst, i, sum[0])
		return nil
	})

	d, err := oclfpga.Compile(p, oclfpga.StratixV(), oclfpga.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m := oclfpga.NewMachine(d, oclfpga.SimOptions{})
	vcd := m.NewVCD("pipe")
	ctl := must(oclfpga.NewController(m, ifc))

	bs := must(m.NewBuffer("src", oclfpga.I32, n))
	bd := must(m.NewBuffer("dst", oclfpga.I32, n))
	for i := range bs.Data {
		bs.Data[i] = int64(i + 1)
	}

	if err := ctl.StartLinear(0); err != nil {
		log.Fatal(err)
	}
	pu, err := m.Launch("producer", oclfpga.Args{"src": bs})
	if err != nil {
		log.Fatal(err)
	}
	cu, err := m.Launch("consumer", oclfpga.Args{"dst": bd})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Stop(0); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("producer finished at cycle %d, consumer at %d\n\n", pu.FinishedAt(), cu.FinishedAt())

	fmt.Println("== view 1: vendor-style counters (accumulated stalls) ==")
	fmt.Println(m.Profile(pu, cu))

	fmt.Println("== view 2: ibuffer latency-pair trace (per-push inter-completion gaps) ==")
	recs, err := ctl.ReadTrace(0)
	if err != nil {
		log.Fatal(err)
	}
	valid := oclfpga.ValidRecords(recs)
	var gaps []int64
	for _, r := range valid[1:] {
		gaps = append(gaps, r.Data)
	}
	st := oclfpga.SummarizeLatencies(gaps)
	fmt.Printf("%d pushes; inter-push gap min %d / median %d / max %d cycles\n",
		len(valid), st.Min, st.P50, st.Max)
	fmt.Printf("the median gap ~ the consumer's per-element time: the channel is the bottleneck\n")
	fmt.Println(oclfpga.NewHistogram(gaps, 8, 10))

	f, err := os.CreateTemp("", "channelstall-*.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := vcd.Flush(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== view 3: SignalTap-style waveform ==\n%s (%d value changes; open in GTKWave)\n",
		f.Name(), vcd.Changes())
}

// must unwraps (value, error), aborting the example on error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
