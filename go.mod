module oclfpga

go 1.22
