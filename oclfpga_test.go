package oclfpga_test

import (
	"testing"

	"oclfpga"
)

// TestPublicAPIEndToEnd drives the whole documented flow through the facade:
// build, instrument, compile, simulate, control, read back.
func TestPublicAPIEndToEnd(t *testing.T) {
	p := oclfpga.NewProgram("api")
	ib, err := oclfpga.BuildIBuffer(p, oclfpga.IBufferConfig{Depth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ifc := oclfpga.BuildHostInterface(p, ib)
	timer := oclfpga.AddHDLTimer(p)

	k := p.AddKernel("dut", oclfpga.SingleTask)
	x := k.AddGlobal("x", oclfpga.I32)
	z := k.AddGlobal("z", oclfpga.I64)
	b := k.NewBuilder()
	start := oclfpga.GetTime(b, timer, b.Ci32(0))
	sum := b.ForN("i", 16, []oclfpga.Val{b.Ci32(0)}, func(lb *oclfpga.Builder, i oclfpga.Val, c []oclfpga.Val) []oclfpga.Val {
		v := lb.Add(c[0], lb.Load(x, i))
		oclfpga.TakeSnapshot(lb, ib, 0, v)
		return []oclfpga.Val{v}
	})
	end := oclfpga.GetTime(b, timer, sum[0])
	b.Store(z, b.Ci32(0), sum[0])
	b.Store(z, b.Ci32(1), b.Sub(end, start))

	d, err := oclfpga.Compile(p, oclfpga.StratixV(), oclfpga.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Area.FmaxMHz <= 0 {
		t.Fatal("no Fmax estimate")
	}
	m := oclfpga.NewMachine(d, oclfpga.SimOptions{})
	ctl := must(oclfpga.NewController(m, ifc))
	bx := must(m.NewBuffer("x", oclfpga.I32, 16))
	bz := must(m.NewBuffer("z", oclfpga.I64, 2))
	for i := range bx.Data {
		bx.Data[i] = int64(i)
	}
	if err := ctl.StartLinear(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Launch("dut", oclfpga.Args{"x": bx, "z": bz}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if bz.Data[0] != 120 {
		t.Fatalf("sum = %d, want 120", bz.Data[0])
	}
	if bz.Data[1] <= 0 {
		t.Fatalf("measured latency = %d", bz.Data[1])
	}
	if err := ctl.Stop(0); err != nil {
		t.Fatal(err)
	}
	recs, err := ctl.ReadTrace(0)
	if err != nil {
		t.Fatal(err)
	}
	valid := oclfpga.ValidRecords(recs)
	if len(valid) != 16 {
		t.Fatalf("captured %d snapshots, want 16", len(valid))
	}
	// running sums 0,1,3,6,...
	want := int64(0)
	for i, r := range valid {
		want += int64(i)
		if r.Data != want {
			t.Fatalf("snapshot %d = %d, want %d", i, r.Data, want)
		}
	}
}

func TestDeviceCatalogExported(t *testing.T) {
	devs := oclfpga.Devices()
	if len(devs) != 3 {
		t.Fatalf("Devices() = %d entries", len(devs))
	}
	if oclfpga.StratixV().Name == "" || oclfpga.Arria10().Name == "" || oclfpga.Arria10Integrated().Name == "" {
		t.Fatal("device constructors broken")
	}
}

func TestTraceHelpersExported(t *testing.T) {
	a := []oclfpga.Record{{T: 10, Data: 1}, {T: 20, Data: 2}}
	bb := []oclfpga.Record{{T: 13, Data: 1}, {T: 26, Data: 2}}
	lats := oclfpga.PairLatencies(a, bb)
	if len(lats) != 2 || lats[0] != 3 || lats[1] != 6 {
		t.Fatalf("PairLatencies = %v", lats)
	}
	st := oclfpga.SummarizeLatencies(lats)
	if st.N != 2 || st.Min != 3 || st.Max != 6 {
		t.Fatalf("stats = %+v", st)
	}
	h := oclfpga.NewHistogram(lats, 2, 4)
	if len(h.Counts) != 4 {
		t.Fatalf("histogram = %+v", h)
	}
	evs := oclfpga.DecodeWatch([]oclfpga.Record{{T: 1, Data: 3<<16 | 9}})
	if len(evs) != 1 || evs[0].Addr != 3 || evs[0].Tag != 9 {
		t.Fatalf("DecodeWatch = %+v", evs)
	}
}

// TestWatchpointFunctionsExported exercises the watch-family constants
// through the facade.
func TestWatchpointFunctionsExported(t *testing.T) {
	p := oclfpga.NewProgram("w")
	for i, f := range []oclfpga.IBufferFunction{
		oclfpga.RecordFunc, oclfpga.StallMonitor, oclfpga.LatencyPair,
		oclfpga.Watchpoint, oclfpga.InvarianceCheck, oclfpga.HistogramFunc,
	} {
		cfg := oclfpga.IBufferConfig{Name: string(rune('a' + i)), Depth: 8, Func: f}
		if _, err := oclfpga.BuildIBuffer(p, cfg); err != nil {
			t.Fatalf("BuildIBuffer(%v): %v", f, err)
		}
	}
	if _, err := oclfpga.BuildIBuffer(p, oclfpga.IBufferConfig{
		Name: "bchk", Depth: 8, Func: oclfpga.BoundCheck, BoundLo: 0, BoundHi: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
